#include "common/lock_order.h"

#if AQP_LOCK_ORDER

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define AQP_LOCK_ORDER_HAVE_BACKTRACE 1
#endif
#endif

namespace aqp {
namespace sync {
namespace lock_order {

namespace {

constexpr int kMaxFrames = 32;

/// Where an order edge was first recorded: the acquiring call stack.
struct EdgeSite {
  void* frames[kMaxFrames];
  int depth = 0;
};

void CaptureStack(EdgeSite* site) {
#ifdef AQP_LOCK_ORDER_HAVE_BACKTRACE
  site->depth = backtrace(site->frames, kMaxFrames);
#else
  site->depth = 0;
#endif
}

void PrintStack(const EdgeSite& site) {
#ifdef AQP_LOCK_ORDER_HAVE_BACKTRACE
  if (site.depth > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(site.frames), site.depth, 2);
    return;
  }
#endif
  std::fprintf(stderr, "  <no backtrace available>\n");
}

void PrintCurrentStack() {
#ifdef AQP_LOCK_ORDER_HAVE_BACKTRACE
  EdgeSite here;
  CaptureStack(&here);
  PrintStack(here);
#else
  std::fprintf(stderr, "  <no backtrace available>\n");
#endif
}

/// The global acquired-order graph. Guarded by its own raw std::mutex
/// (deliberately NOT a sync::Mutex — the detector must not recurse
/// into itself) which is a leaf: no other lock is ever taken while it
/// is held.
struct Graph {
  std::mutex mu;
  uint64_t next_id = 1;
  std::unordered_map<uint64_t, const char*> names;
  /// edges[a] contains b iff some thread acquired b while holding a.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> edges;
  /// First-seen acquisition stack per recorded edge.
  std::map<std::pair<uint64_t, uint64_t>, EdgeSite> sites;
};

/// Leaked intentionally: mutexes may be destroyed during static
/// destruction, after a function-local static's destructor would run.
Graph& G() {
  static Graph* graph = new Graph();
  return *graph;
}

/// The calling thread's held-lock stack, in acquisition order.
thread_local std::vector<uint64_t>* tl_held = nullptr;

std::vector<uint64_t>& Held() {
  if (tl_held == nullptr) tl_held = new std::vector<uint64_t>();
  return *tl_held;
}

const char* NameLocked(const Graph& g, uint64_t id) {
  auto it = g.names.find(id);
  return it == g.names.end() ? "<destroyed>" : it->second;
}

/// Depth-first reachability from `from` to `to` over g.edges.
bool ReachableLocked(const Graph& g, uint64_t from, uint64_t to,
                     std::unordered_set<uint64_t>* visited,
                     std::vector<uint64_t>* path) {
  if (from == to) {
    path->push_back(from);
    return true;
  }
  if (!visited->insert(from).second) return false;
  auto it = g.edges.find(from);
  if (it == g.edges.end()) return false;
  for (uint64_t next : it->second) {
    if (ReachableLocked(g, next, to, visited, path)) {
      path->push_back(from);
      return true;
    }
  }
  return false;
}

[[noreturn]] void AbortInversionLocked(const Graph& g, uint64_t held,
                                       uint64_t acquiring,
                                       const std::vector<uint64_t>& path) {
  std::fprintf(stderr,
               "\n[lock_order] lock order inversion: acquiring \"%s\" (#%llu) "
               "while holding \"%s\" (#%llu), but the opposite order is "
               "already on record — some interleaving deadlocks.\n",
               NameLocked(g, acquiring),
               static_cast<unsigned long long>(acquiring), NameLocked(g, held),
               static_cast<unsigned long long>(held));
  std::fprintf(stderr, "[lock_order] recorded order path: ");
  for (size_t i = path.size(); i-- > 0;) {
    std::fprintf(stderr, "\"%s\"%s", NameLocked(g, path[i]),
                 i == 0 ? "\n" : " -> ");
  }
  std::fprintf(stderr, "[lock_order] this thread now holds:");
  for (uint64_t id : Held()) {
    std::fprintf(stderr, " \"%s\"", NameLocked(g, id));
  }
  std::fprintf(stderr, "\n[lock_order] current acquisition stack:\n");
  PrintCurrentStack();
  // The path runs acquiring -> ... -> held; its first edge is the
  // earliest recorded piece of the opposite order. path is stored in
  // reverse (held ... acquiring), so the first edge of the path is the
  // last two entries.
  if (path.size() >= 2) {
    const auto key = std::make_pair(path[path.size() - 1],
                                    path[path.size() - 2]);
    auto it = g.sites.find(key);
    if (it != g.sites.end()) {
      std::fprintf(stderr,
                   "[lock_order] conflicting edge \"%s\" -> \"%s\" was first "
                   "recorded here:\n",
                   NameLocked(g, key.first), NameLocked(g, key.second));
      PrintStack(it->second);
    }
  }
  std::abort();
}

[[noreturn]] void AbortRecursionLocked(const Graph& g, uint64_t id) {
  std::fprintf(stderr,
               "\n[lock_order] recursive acquisition: \"%s\" (#%llu) is "
               "already held by this thread (std::mutex self-deadlock).\n",
               NameLocked(g, id), static_cast<unsigned long long>(id));
  std::fprintf(stderr, "[lock_order] current acquisition stack:\n");
  PrintCurrentStack();
  std::abort();
}

}  // namespace

uint64_t Register(const char* name) {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  const uint64_t id = g.next_id++;
  g.names.emplace(id, name);
  return id;
}

void Unregister(uint64_t id) {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.names.erase(id);
  g.edges.erase(id);
  for (auto& [from, targets] : g.edges) {
    targets.erase(id);
  }
  for (auto it = g.sites.begin(); it != g.sites.end();) {
    if (it->first.first == id || it->first.second == id) {
      it = g.sites.erase(it);
    } else {
      ++it;
    }
  }
}

void BeforeAcquire(uint64_t id) {
  std::vector<uint64_t>& held = Held();
  if (held.empty()) return;  // no ordering constraint to record
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  for (uint64_t h : held) {
    if (h == id) AbortRecursionLocked(g, id);
    std::unordered_set<uint64_t>& targets = g.edges[h];
    if (targets.count(id) != 0) continue;  // edge already proven safe
    // Adding h -> id closes a cycle iff h is already reachable from id.
    std::unordered_set<uint64_t> visited;
    std::vector<uint64_t> path;
    if (ReachableLocked(g, id, h, &visited, &path)) {
      AbortInversionLocked(g, h, id, path);
    }
    targets.insert(id);
    CaptureStack(&g.sites[std::make_pair(h, id)]);
  }
}

void AfterAcquire(uint64_t id) { Held().push_back(id); }

void BeforeRelease(uint64_t id) {
  std::vector<uint64_t>& held = Held();
  // Out-of-order release is legal; drop the most recent occurrence.
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i] == id) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

size_t EdgeCountForTest() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  size_t edges = 0;
  for (const auto& [from, targets] : g.edges) {
    edges += targets.size();
  }
  return edges;
}

size_t HeldCountForTest() { return Held().size(); }

}  // namespace lock_order
}  // namespace sync
}  // namespace aqp

#endif  // AQP_LOCK_ORDER
