#ifndef AQP_COMMON_FLAGS_H_
#define AQP_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace aqp {

/// \brief Tiny command-line flag parser for examples and benches.
///
/// Supports `--name=value`, `--name value`, and bare boolean
/// `--name`. Positional arguments are collected in order. Example:
///
/// \code
///   FlagParser flags;
///   flags.AddInt64("child-size", 10000, "number of child tuples");
///   flags.AddDouble("theta-sim", 0.85, "similarity threshold");
///   Status st = flags.Parse(argc, argv);
/// \endcode
class FlagParser {
 public:
  /// Registers an int64 flag with a default and help text.
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help);
  /// Registers a double flag.
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  /// Registers a string flag.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  /// Registers a boolean flag (`--name` or `--name=true/false`).
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv. Unknown flags produce an InvalidArgument status.
  Status Parse(int argc, const char* const* argv);

  /// \name Typed accessors; the flag must have been registered.
  /// @{
  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  /// @}

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage/help string listing all registered flags.
  std::string Help() const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetValue(Flag* flag, const std::string& name,
                  const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace aqp

#endif  // AQP_COMMON_FLAGS_H_
