#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace aqp {

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help) {
  Flag flag;
  flag.type = Type::kInt64;
  flag.help = help;
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

Status FlagParser::SetValue(Flag* flag, const std::string& name,
                            const std::string& text) {
  switch (flag->type) {
    case Type::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not an integer: '" + text + "'");
      }
      flag->int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a number: '" + text + "'");
      }
      flag->double_value = v;
      return Status::OK();
    }
    case Type::kString:
      flag->string_value = text;
      return Status::OK();
    case Type::kBool: {
      std::string lower = ToLowerAscii(text);
      if (lower == "true" || lower == "1" || lower == "yes") {
        flag->bool_value = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a boolean: '" + text + "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" + Help());
    }
    Flag* flag = &it->second;
    if (!has_value) {
      if (flag->type == Type::kBool) {
        flag->bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    AQP_RETURN_IF_ERROR(SetValue(flag, name, value));
  }
  return Status::OK();
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return flags_.at(name).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return flags_.at(name).double_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return flags_.at(name).string_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return flags_.at(name).bool_value;
}

std::string FlagParser::Help() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kInt64:
        os << " (int, default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        os << " (double, default " << flag.double_value << ")";
        break;
      case Type::kString:
        os << " (string, default '" << flag.string_value << "')";
        break;
      case Type::kBool:
        os << " (bool, default " << (flag.bool_value ? "true" : "false")
           << ")";
        break;
    }
    os << ": " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace aqp
