#ifndef AQP_COMMON_MACROS_H_
#define AQP_COMMON_MACROS_H_

/// Helper macros for Status/Result propagation, after the Arrow idiom.

#define AQP_CONCAT_IMPL(x, y) x##y
#define AQP_CONCAT(x, y) AQP_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Status; returns it from the
/// enclosing function if not OK.
#define AQP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::aqp::Status _aqp_status = (expr);            \
    if (!_aqp_status.ok()) return _aqp_status;     \
  } while (false)

/// Evaluates an expression returning Result<T>; on success assigns the
/// value to `lhs`, otherwise returns the error status.
#define AQP_ASSIGN_OR_RETURN(lhs, expr)                        \
  AQP_ASSIGN_OR_RETURN_IMPL(AQP_CONCAT(_aqp_result_, __LINE__), lhs, expr)

#define AQP_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).ValueOrDie()

/// Marks intentionally unused values.
#define AQP_UNUSED(x) (void)(x)

#endif  // AQP_COMMON_MACROS_H_
