#ifndef AQP_COMMON_STRING_UTIL_H_
#define AQP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aqp {

/// Uppercases ASCII letters; other bytes pass through unchanged.
std::string ToUpperAscii(std::string_view s);

/// Lowercases ASCII letters; other bytes pass through unchanged.
std::string ToLowerAscii(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view TrimAscii(std::string_view s);

/// Collapses runs of ASCII whitespace into single spaces and trims.
std::string CollapseWhitespace(std::string_view s);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins the pieces with the given separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats a double as the shortest representation that parses back to
/// the same bits (std::to_chars shortest form where available,
/// max_digits10 otherwise). This is the one double rendering shared by
/// Value::ToString and CsvWriter::Field, so debug output and CSV dumps
/// agree byte for byte.
std::string FormatDoubleShortest(double value);

/// Formats a count with thousands separators (e.g. "12,345").
std::string FormatCount(uint64_t value);

}  // namespace aqp

#endif  // AQP_COMMON_STRING_UTIL_H_
