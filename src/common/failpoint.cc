#include "common/failpoint.h"

#include <unordered_map>
#include <utility>

#include "common/sync.h"

namespace aqp {
namespace fail {

namespace {

// SplitMix64: tiny, deterministic, good enough for fire/no-fire draws.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct SiteState {
  bool armed = false;
  Policy policy;
  uint64_t rng = 0;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

// Lock hierarchy: `mu` is a leaf — failpoint evaluation happens inside
// arbitrary engine code, so nothing else may ever be acquired under it.
struct RegistryImpl {
  sync::Mutex mu{"failpoint.registry.mu"};
  std::unordered_map<std::string, SiteState> sites AQP_GUARDED_BY(mu);
  // Count of armed sites, mirrored into an atomic so the hot path can
  // skip the mutex entirely when nothing is armed.
  std::atomic<size_t> armed_count{0};
};

RegistryImpl& Registry() {
  static RegistryImpl* impl = new RegistryImpl();
  return *impl;
}

// Decides whether `site` fires this evaluation and, if so, returns the
// injected status (with a site breadcrumb) plus whether to throw.
// OK status <=> no fire.
std::pair<Status, bool> Evaluate(const char* site) {
  RegistryImpl& reg = Registry();
  sync::MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end() || !it->second.armed) {
    return {Status::OK(), false};
  }
  SiteState& state = it->second;
  ++state.hits;
  bool fire = false;
  switch (state.policy.kind) {
    case Policy::Kind::kOnce:
      fire = state.fires == 0;
      break;
    case Policy::Kind::kNthHit:
      fire = state.hits == state.policy.nth;
      break;
    case Policy::Kind::kProbability: {
      // Map a 53-bit draw to [0, 1); deterministic per (seed, hit #).
      const double draw =
          static_cast<double>(SplitMix64Next(&state.rng) >> 11) *
          (1.0 / 9007199254740992.0);
      fire = draw < state.policy.probability;
      break;
    }
  }
  if (!fire) return {Status::OK(), false};
  ++state.fires;
  Status injected =
      state.policy.status.WithContext(std::string("site=") + site);
  return {std::move(injected), state.policy.throws};
}

}  // namespace

std::vector<std::string> KnownSites() {
  return {site::kCsvOpen,      site::kCsvRead,      site::kScanNext,
          site::kExchangeRoute, site::kExchangeStage, site::kIngestPrefetch,
          site::kExchangeMerge, site::kShardPhaseA,
          site::kShardPhaseB,  site::kPoolTask,     site::kStoreAdd,
          site::kArenaAlloc,   site::kParallelOpen, site::kServiceAdmit,
          site::kServiceFinalize, site::kBudgetCharge, site::kWatchdogStall};
}

void Arm(const std::string& site, Policy policy) {
  RegistryImpl& reg = Registry();
  sync::MutexLock lock(&reg.mu);
  SiteState& state = reg.sites[site];
  if (!state.armed) {
    reg.armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.rng = policy.seed;
  state.policy = std::move(policy);
  state.hits = 0;
  state.fires = 0;
}

bool Disarm(const std::string& site) {
  RegistryImpl& reg = Registry();
  sync::MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end() || !it->second.armed) return false;
  it->second.armed = false;
  reg.armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DisarmAll() {
  RegistryImpl& reg = Registry();
  sync::MutexLock lock(&reg.mu);
  reg.sites.clear();
  reg.armed_count.store(0, std::memory_order_relaxed);
}

uint64_t Hits(const std::string& site) {
  RegistryImpl& reg = Registry();
  sync::MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

uint64_t Fires(const std::string& site) {
  RegistryImpl& reg = Registry();
  sync::MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

bool AnyArmed() {
  return Registry().armed_count.load(std::memory_order_relaxed) > 0;
}

Status Check(const char* site) {
  auto fired = Evaluate(site);
  if (fired.first.ok()) return Status::OK();
  if (fired.second) throw InjectedFault(std::move(fired.first));
  return std::move(fired.first);
}

void CheckOrThrow(const char* site) {
  auto fired = Evaluate(site);
  if (fired.first.ok()) return;
  throw InjectedFault(std::move(fired.first));
}

}  // namespace fail
}  // namespace aqp
