#ifndef AQP_COMMON_FAILPOINT_H_
#define AQP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace aqp {
namespace fail {

/// \brief Deterministic fault injection.
///
/// A *failpoint* is a named site compiled into production code paths
/// (`AQP_FAILPOINT(site::kExchangeRoute)`) that normally does nothing,
/// but can be *armed* with a policy from tests: fire on the Nth
/// evaluation, fire once, or fire with a seeded per-site probability —
/// each either returning a configured Status from the enclosing
/// function or throwing an InjectedFault. Arming is process-global, so
/// a chaos harness can inject faults into the middle of a concurrent
/// multi-query run and then assert that the engine tore the faulted
/// query down cleanly while unaffected queries were byte-identical.
///
/// Determinism: the Nth-hit and once policies depend only on the
/// site's evaluation count since arming; the probability policy draws
/// from a per-site SplitMix64 stream seeded at Arm() time, so the same
/// seed yields the same fire/no-fire sequence for the same sequence of
/// evaluations. (Under concurrency the *interleaving* of evaluations
/// across threads may vary; the decision for evaluation #k does not.)
///
/// Cost: with `AQP_ENABLE_FAILPOINTS` undefined the macros compile to
/// nothing. With it defined but no site armed, each site is one
/// relaxed atomic load and a predicted-untaken branch.
///
/// Thread contract: Arm/Disarm/Evaluate are safe from any thread.

/// True iff failpoint sites are compiled into this build (the
/// AQP_ENABLE_FAILPOINTS kill switch; tests skip when false).
#if defined(AQP_ENABLE_FAILPOINTS)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// \name Canonical site names.
///
/// Every failpoint threaded through the engine uses one of these
/// constants, and KnownSites() enumerates them — the chaos harness
/// iterates that list, so a new site added here is automatically swept.
/// @{
namespace site {
/// CsvSource::Open (header validation / handle setup).
inline constexpr char kCsvOpen[] = "csv.open";
/// CsvSource batch/row scan entry (a source read error mid-stream).
inline constexpr char kCsvRead[] = "csv.read";
/// RelationScan::NextColumnBatch entry.
inline constexpr char kScanNext[] = "scan.next";
/// RadixExchange::RouteEpoch entry (routing/ingest failure).
inline constexpr char kExchangeRoute[] = "exchange.route";
/// RadixExchange::StageEpoch entry (pipelined route-ahead of the next
/// epoch; fires on the ingest task, so a fault here must discard the
/// staged epoch without touching the committed one).
inline constexpr char kExchangeStage[] = "exchange.stage";
/// PrefetchSource producer body, per background refill (overlapped
/// source parse for the single-threaded path).
inline constexpr char kIngestPrefetch[] = "ingest.prefetch";
/// ParallelAdaptiveJoin::MergeEpoch entry (coordinator merge).
inline constexpr char kExchangeMerge[] = "exchange.merge";
/// JoinShard::RunBuildPhase entry (phase A worker body; throws).
inline constexpr char kShardPhaseA[] = "shard.phase_a";
/// JoinShard::RunCrossProbePhase entry (phase B worker body; throws).
inline constexpr char kShardPhaseB[] = "shard.phase_b";
/// ThreadPool task body, every dispatched task (throws).
inline constexpr char kPoolTask[] = "pool.task";
/// TupleStore::AddRow (per-row ingest; throws — e.g. simulated
/// allocation failure / resource exhaustion).
inline constexpr char kStoreAdd[] = "store.add";
/// KeyArena::Intern (key-byte arena growth; throws).
inline constexpr char kArenaAlloc[] = "arena.alloc";
/// ParallelAdaptiveJoin::Open, after both children opened (OpenGuard
/// regression surface).
inline constexpr char kParallelOpen[] = "parallel.open";
/// LinkageService runner, right after a query is admitted.
inline constexpr char kServiceAdmit[] = "service.admit";
/// LinkageService runner, at result finalization of a done query.
inline constexpr char kServiceFinalize[] = "service.finalize";
/// ParallelAdaptiveJoin::RefreshMemoryAccounting, evaluated at each
/// epoch control point when the join carries a budget node (a failed
/// charge degrades through the recoverable-fault path).
inline constexpr char kBudgetCharge[] = "budget.charge";
/// LinkageService::Govern, before the heartbeat-guarded control-point
/// hold. Only honored when the query has a stall timeout configured;
/// a throwing policy holds the epoch (simulated stall) until the
/// watchdog force-finalizes the query.
inline constexpr char kWatchdogStall[] = "watchdog.stall";
}  // namespace site

/// All canonical site names above (the chaos matrix).
std::vector<std::string> KnownSites();
/// @}

/// \brief What an armed site does when it fires.
struct Policy {
  enum class Kind {
    /// Fire exactly on the Nth evaluation since arming (1-based).
    kNthHit,
    /// Fire on the first evaluation, then never again.
    kOnce,
    /// Fire each evaluation independently with probability `p`, drawn
    /// from a per-site deterministic stream seeded at Arm().
    kProbability,
  };

  Kind kind = Kind::kOnce;
  /// The injected error. The site name is appended as a breadcrumb
  /// when firing ("site=<name>" context).
  Status status = Status::IOError("injected fault");
  /// Fire by throwing InjectedFault instead of returning the status.
  /// Sites in void contexts (worker task bodies, store ingest) always
  /// throw when fired, whatever this flag says.
  bool throws = false;
  /// kNthHit: the 1-based evaluation count to fire on.
  uint64_t nth = 1;
  /// kProbability: per-evaluation fire probability in [0, 1].
  double probability = 0.0;
  /// kProbability: seed of the site's deterministic stream.
  uint64_t seed = 0;

  static Policy Once(Status s, bool do_throw = false) {
    Policy p;
    p.kind = Kind::kOnce;
    p.status = std::move(s);
    p.throws = do_throw;
    return p;
  }
  static Policy OnNthHit(uint64_t nth, Status s, bool do_throw = false) {
    Policy p;
    p.kind = Kind::kNthHit;
    p.nth = nth == 0 ? 1 : nth;
    p.status = std::move(s);
    p.throws = do_throw;
    return p;
  }
  static Policy WithProbability(double probability, uint64_t seed, Status s,
                                bool do_throw = false) {
    Policy p;
    p.kind = Kind::kProbability;
    p.probability = probability;
    p.seed = seed;
    p.status = std::move(s);
    p.throws = do_throw;
    return p;
  }
};

/// \brief Exception form of a fired failpoint (and of any injected
/// fault crossing a void boundary). The thread pool's containment
/// converts it back into the carried Status.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// \name Registry operations (always available; sites only evaluate
/// when compiled in).
/// @{
/// Arms `site` with `policy`, resetting the site's hit/fire counters.
void Arm(const std::string& site, Policy policy);
/// Disarms `site`; returns true iff it was armed. Counters survive
/// until the next Arm() so tests can inspect them after the run.
bool Disarm(const std::string& site);
/// Disarms every site and clears all counters.
void DisarmAll();
/// Evaluations of `site` since it was last armed.
uint64_t Hits(const std::string& site);
/// Times `site` actually fired since it was last armed.
uint64_t Fires(const std::string& site);
/// @}

/// \name Hot-path entry points (called by the macros).
/// @{
/// True iff any site is armed (one relaxed load).
bool AnyArmed();
/// Evaluates `site`: OK when not armed / not firing; the armed status
/// when firing a returning policy; throws InjectedFault when firing a
/// throwing policy.
Status Check(const char* site);
/// Evaluates `site` in a void context: any fired policy (returning or
/// throwing) becomes an InjectedFault throw.
void CheckOrThrow(const char* site);
/// @}

/// \brief RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Policy policy) : site_(std::move(site)) {
    Arm(site_, std::move(policy));
  }
  ~ScopedFailpoint() { Disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace fail
}  // namespace aqp

/// Site macro for Status- or Result-returning contexts: returns the
/// injected status from the enclosing function when the site fires
/// (or propagates the InjectedFault of a throwing policy).
#if defined(AQP_ENABLE_FAILPOINTS)
#define AQP_FAILPOINT(site_name)                                \
  do {                                                          \
    if (__builtin_expect(::aqp::fail::AnyArmed(), 0)) {         \
      ::aqp::Status _aqp_fp = ::aqp::fail::Check(site_name);    \
      if (!_aqp_fp.ok()) return _aqp_fp;                        \
    }                                                           \
  } while (false)
/// Site macro for void contexts (worker bodies, ingest paths): a fired
/// policy of either flavor throws InjectedFault, to be contained at
/// the nearest task/operator boundary.
#define AQP_FAILPOINT_THROW(site_name)                          \
  do {                                                          \
    if (__builtin_expect(::aqp::fail::AnyArmed(), 0)) {         \
      ::aqp::fail::CheckOrThrow(site_name);                     \
    }                                                           \
  } while (false)
#else
#define AQP_FAILPOINT(site_name) \
  do {                           \
  } while (false)
#define AQP_FAILPOINT_THROW(site_name) \
  do {                                 \
  } while (false)
#endif

#endif  // AQP_COMMON_FAILPOINT_H_
