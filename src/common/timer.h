#ifndef AQP_COMMON_TIMER_H_
#define AQP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace aqp {

/// \brief Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates elapsed nanoseconds into a counter on scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* accumulator_ns)
      : accumulator_ns_(accumulator_ns) {}
  ~ScopedTimer() { *accumulator_ns_ += timer_.ElapsedNanos(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* accumulator_ns_;
  Timer timer_;
};

}  // namespace aqp

#endif  // AQP_COMMON_TIMER_H_
