#ifndef AQP_COMMON_RESULT_H_
#define AQP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace aqp {

/// \brief Either a value of type T or a non-OK Status.
///
/// A Result constructed from an OK status is a programming error; the
/// invariant is enforced with an assertion in debug builds and coerced
/// to an internal error otherwise.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, like arrow::Result).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a Result holding an error (implicit).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is held).
  const Status& status() const { return status_; }

  /// \name Value accessors. Must only be called when ok().
  /// @{
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  /// @}

  /// Returns the value, or `fallback` if an error is held.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aqp

#endif  // AQP_COMMON_RESULT_H_
