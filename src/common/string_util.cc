#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>
#include <sstream>
#include <system_error>

namespace aqp {

namespace {
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsAsciiSpace(s[begin])) ++begin;
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // drop leading whitespace
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatDoubleShortest(double value) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  if (result.ec == std::errc()) return std::string(buf, result.ptr);
#endif
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t leading = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - leading) % 3 == 0 && i >= leading) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace aqp
