#include "common/random.h"

#include <algorithm>
#include <cassert>

namespace aqp {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

std::string Rng::RandomString(size_t length, const std::string& alphabet) {
  assert(!alphabet.empty());
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[Index(alphabet.size())]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace aqp
