#ifndef AQP_COMMON_MEMORY_BUDGET_H_
#define AQP_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace aqp {
namespace mem {

/// \brief Per-node byte limits. Zero disables a bound.
///
/// Semantics (enforced by the service's ResourceGovernor, not by the
/// tree itself — the tree is pure accounting):
///   * past `soft_bytes` a query is clamped toward the cheapest exact
///     state, freezing q-gram index growth (memory joins time as a
///     governed axis of the paper's completeness trade-off);
///   * past `hard_bytes` a query is finalized early through the
///     kFinalizePartial path, with a strict-prefix partial result.
struct BudgetLimits {
  uint64_t soft_bytes = 0;
  uint64_t hard_bytes = 0;

  bool any() const { return soft_bytes > 0 || hard_bytes > 0; }
};

/// \brief One node of the hierarchical memory-accounting tree
/// (global → per-query → per-shard).
///
/// Each node owns a *local* usage figure — replaced wholesale by
/// Refresh(), never incrementally charged — plus a *subtree* aggregate
/// that includes every descendant's local usage. A refresh propagates
/// its signed delta up the ancestor chain with one fetch_add per
/// level, updating each ancestor's peak high-water along the way, so
/// reading any node's used()/peak() is one relaxed load with no
/// locking and no tree walk.
///
/// Refreshes are driven from the cheap quiescent points the engine
/// already owns: epoch control points (coordinator refreshes its
/// query's shard nodes from ApproximateMemoryUsage()) and ingest batch
/// refills (the staging task reports the staged tier it just filled).
/// The figures are therefore bounded-stale between control points —
/// accounting, not malloc interception.
///
/// Thread contract: Refresh() may be called on different nodes of the
/// same tree concurrently (every running query refreshes its own
/// nodes; all of them propagate into the shared root). Refreshing the
/// *same* node concurrently is allowed but pointless — last write
/// wins; the subtree totals stay consistent either way because deltas
/// are applied atomically.
///
/// Lifetime contract: a child must be destroyed before its parent.
/// Destruction refreshes the node to zero first, so a finished
/// query's usage leaves the global root automatically — the
/// budget-counter-leak invariant the chaos harness asserts is simply
/// root.used() == 0 at quiescence.
class BudgetNode {
 public:
  explicit BudgetNode(std::string name, BudgetNode* parent = nullptr,
                      BudgetLimits limits = {});
  ~BudgetNode();

  BudgetNode(const BudgetNode&) = delete;
  BudgetNode& operator=(const BudgetNode&) = delete;

  /// Replaces this node's local usage with `bytes` and propagates the
  /// delta (and peak updates) up the ancestor chain.
  void Refresh(uint64_t bytes);

  /// This node's own usage (excluding descendants).
  uint64_t local_used() const {
    return Clamp(local_.load(std::memory_order_relaxed));
  }
  /// Usage of this node plus every descendant.
  uint64_t used() const {
    return Clamp(subtree_.load(std::memory_order_relaxed));
  }
  /// High-water mark of used() since construction.
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  bool over_soft() const {
    return limits_.soft_bytes > 0 && used() >= limits_.soft_bytes;
  }
  bool over_hard() const {
    return limits_.hard_bytes > 0 && used() >= limits_.hard_bytes;
  }

  const BudgetLimits& limits() const { return limits_; }
  const std::string& name() const { return name_; }
  BudgetNode* parent() const { return parent_; }

 private:
  static uint64_t Clamp(int64_t v) {
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }

  std::string name_;
  BudgetNode* parent_;
  BudgetLimits limits_;
  /// Signed so a racing pair of refreshes can transiently undershoot
  /// zero without wrapping; accessors clamp.
  std::atomic<int64_t> local_{0};
  std::atomic<int64_t> subtree_{0};
  std::atomic<uint64_t> peak_{0};
};

}  // namespace mem
}  // namespace aqp

#endif  // AQP_COMMON_MEMORY_BUDGET_H_
