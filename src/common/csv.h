#ifndef AQP_COMMON_CSV_H_
#define AQP_COMMON_CSV_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace aqp {

/// \brief Minimal RFC-4180-style CSV writer used by the experiment
/// harness to dump machine-readable results next to the human tables.
class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Writes a header or data row, quoting fields as needed.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string Field(double value);
  static std::string Field(int64_t value);
  static std::string Field(uint64_t value);

 private:
  static std::string Escape(const std::string& field);
  std::ostream* out_;
};

/// \brief Parses CSV text into rows of fields (quotes honoured).
/// Used by tests to round-trip harness output.
Status ParseCsv(const std::string& text,
                std::vector<std::vector<std::string>>* rows);

}  // namespace aqp

#endif  // AQP_COMMON_CSV_H_
