#ifndef AQP_COMMON_LOCK_ORDER_H_
#define AQP_COMMON_LOCK_ORDER_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Debug-only runtime lock-order (deadlock-potential) detector, hooked
/// into sync::Mutex. Every acquisition records directed edges from all
/// locks the acquiring thread already holds to the lock being taken;
/// the edges accumulate in one global acquired-order graph. An
/// acquisition whose new edge would close a cycle is a lock-order
/// inversion — some interleaving of the participating threads
/// deadlocks — and aborts the process immediately with both offending
/// acquisition stacks, instead of hanging only on the unlucky schedule.
/// This covers the dynamic deadlock class that the static
/// -Wthread-safety annotations cannot express (the analysis has no
/// inter-procedural lock ordering).
///
/// AQP_LOCK_ORDER gates the whole detector: 1 compiles the hooks and
/// per-mutex bookkeeping in (the default in Debug builds), 0 compiles
/// every hook to nothing and removes the per-mutex id field (the
/// default under NDEBUG), so Release builds pay zero cost — verified
/// by the bench smokes and the compiled-out guard in
/// tests/common/lock_order_test.cc.

#ifndef AQP_LOCK_ORDER
#ifdef NDEBUG
#define AQP_LOCK_ORDER 0
#else
#define AQP_LOCK_ORDER 1
#endif
#endif

namespace aqp {
namespace sync {
namespace lock_order {

/// True iff the detector is compiled into this build.
inline constexpr bool kEnabled = AQP_LOCK_ORDER != 0;

#if AQP_LOCK_ORDER

/// Registers a lock and returns its stable id. `name` is kept for
/// diagnostics and must outlive the lock (string literals only).
uint64_t Register(const char* name);

/// Forgets a destroyed lock: its graph node, every edge touching it,
/// and its name. Ids are never reused, so a dangling id in another
/// thread's transient state cannot alias a new lock.
void Unregister(uint64_t id);

/// Called BEFORE blocking on the lock, so an actual A/B deadlock
/// aborts with a report instead of hanging. Records held→id edges,
/// runs cycle detection, and aborts (after printing the current stack,
/// the held-lock stacks, and the first-seen stack of the conflicting
/// edge) on inversion or on same-thread recursive acquisition.
void BeforeAcquire(uint64_t id);

/// Called after the lock is held: pushes it on the thread's held
/// stack.
void AfterAcquire(uint64_t id);

/// Called before releasing: pops the lock from the thread's held stack
/// (out-of-order release is fine).
void BeforeRelease(uint64_t id);

/// Number of distinct order edges recorded so far (test observability).
size_t EdgeCountForTest();

/// Locks currently held by the calling thread (test observability).
size_t HeldCountForTest();

#endif  // AQP_LOCK_ORDER

}  // namespace lock_order
}  // namespace sync
}  // namespace aqp

#endif  // AQP_COMMON_LOCK_ORDER_H_
