#include "common/csv.h"

#include <algorithm>

#include "common/string_util.h"

namespace aqp {

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) (*out_) << ',';
    (*out_) << Escape(fields[i]);
  }
  (*out_) << '\n';
}

std::string CsvWriter::Field(double value) {
  // Shortest representation that round-trips: metrics/report CSVs carry
  // measured times and p-values whose consumers re-parse them, so the
  // default precision-6 truncation is a correctness bug, not a
  // formatting choice. Shared with Value::ToString so the two double
  // renderings agree.
  return FormatDoubleShortest(value);
}

std::string CsvWriter::Field(int64_t value) { return std::to_string(value); }
std::string CsvWriter::Field(uint64_t value) { return std::to_string(value); }

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

Status ParseCsv(const std::string& text,
                std::vector<std::vector<std::string>>* rows) {
  rows->clear();
  // Bulk-load reserve: one row per newline (upper bound; blank lines
  // and a missing trailing newline only leave slack).
  rows->reserve(
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n')) + 1);
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_data = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_data = true;
        break;
      case '\r':
        // Only the CR of a CRLF line ending is metadata; a bare CR is
        // field data and must survive the round trip.
        if (i + 1 < text.size() && text[i + 1] == '\n') break;
        field.push_back(c);
        row_has_data = true;
        break;
      case '\n':
        if (row_has_data || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows->push_back(std::move(row));
          row.clear();
          // The moved-from vector lost its buffer; size the fresh one
          // like the header so later cells never reallocate.
          row.reserve(rows->front().size());
          row_has_data = false;
        }
        break;
      default:
        field.push_back(c);
        row_has_data = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV input");
  }
  if (row_has_data || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace aqp
