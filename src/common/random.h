#ifndef AQP_COMMON_RANDOM_H_
#define AQP_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace aqp {

/// \brief Deterministic pseudo-random source used throughout the
/// library.
///
/// All data generation and experiments are seeded explicitly so every
/// run (and every test) is reproducible. Wraps std::mt19937_64 with the
/// handful of draws we need.
class Rng {
 public:
  /// Constructs a generator from an explicit seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      std::swap((*items)[i], (*items)[Index(i + 1)]);
    }
  }

  /// Random string of `length` characters drawn from `alphabet`.
  std::string RandomString(size_t length, const std::string& alphabet);

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

  /// Underlying engine, for interop with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace aqp

#endif  // AQP_COMMON_RANDOM_H_
