#include "common/status.h"

namespace aqp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace aqp
