#ifndef AQP_COMMON_HASH_H_
#define AQP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aqp {

/// 64-bit FNV-1a hash of a byte string. Deterministic across platforms,
/// unlike std::hash, so experiment output is stable.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a new 64-bit value into a running hash (boost::hash_combine
/// style, with 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Finalizer from SplitMix64; good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace aqp

#endif  // AQP_COMMON_HASH_H_
