#ifndef AQP_COMMON_STATUS_H_
#define AQP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace aqp {

/// \brief Machine-readable error categories used across the library.
///
/// The set follows the Arrow/RocksDB convention of a small, closed set of
/// codes; all additional detail goes into the human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kIOError,
  kCancelled,
  /// Transient source/backend failure; the operation may succeed if
  /// retried (see the bounded-retry ingest path in RadixExchange).
  kUnavailable,
};

/// \brief Returns the canonical lower-case name of a status code
/// (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// The library does not throw exceptions across public API boundaries;
/// every fallible operation returns a Status (or a Result<T>, see
/// result.h). A default-constructed Status is OK and carries no
/// allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// @}

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message ("" for OK statuses).
  const std::string& message() const { return message_; }

  /// True iff this status carries the given code.
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of a non-OK status; no-op on OK.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace aqp

#endif  // AQP_COMMON_STATUS_H_
