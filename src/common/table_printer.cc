#include "common/table_printer.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace aqp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace aqp
