#include "common/memory_budget.h"

#include <utility>

namespace aqp {
namespace mem {

BudgetNode::BudgetNode(std::string name, BudgetNode* parent,
                       BudgetLimits limits)
    : name_(std::move(name)), parent_(parent), limits_(limits) {}

BudgetNode::~BudgetNode() {
  // Auto-release: a dying node's usage must leave every ancestor's
  // aggregate, or a finished query would pin the global high-water
  // forever (the budget-leak invariant).
  Refresh(0);
}

void BudgetNode::Refresh(uint64_t bytes) {
  const int64_t next = static_cast<int64_t>(bytes);
  const int64_t prev = local_.exchange(next, std::memory_order_relaxed);
  const int64_t delta = next - prev;
  if (delta == 0) return;
  for (BudgetNode* node = this; node != nullptr; node = node->parent_) {
    const int64_t subtree =
        node->subtree_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (subtree <= 0) continue;
    // CAS-max: under concurrent refreshes of sibling subtrees the peak
    // records the largest aggregate any single update observed.
    const uint64_t observed = static_cast<uint64_t>(subtree);
    uint64_t peak = node->peak_.load(std::memory_order_relaxed);
    while (observed > peak &&
           !node->peak_.compare_exchange_weak(peak, observed,
                                              std::memory_order_relaxed)) {
    }
  }
}

}  // namespace mem
}  // namespace aqp
