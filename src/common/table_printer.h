#ifndef AQP_COMMON_TABLE_PRINTER_H_
#define AQP_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace aqp {

/// \brief Renders aligned ASCII tables, used by benches and examples to
/// print the paper's tables/figures as text.
///
/// \code
///   TablePrinter t({"case", "g_rel", "c_rel", "e"});
///   t.AddRow({"uniform/child", "0.91", "0.42", "2.17"});
///   t.Print(std::cout);
/// \endcode
class TablePrinter {
 public:
  /// Constructs a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header rule and column padding.
  void Print(std::ostream& os) const;

  /// Renders to a string (handy in tests).
  std::string ToString() const;

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aqp

#endif  // AQP_COMMON_TABLE_PRINTER_H_
