#include "common/logging.h"

#include <iostream>

namespace aqp {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

Logger& Logger::Global() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (!Enabled(level)) return;
  std::cerr << "[aqp:" << LevelName(level) << "] " << message << "\n";
}

}  // namespace aqp
