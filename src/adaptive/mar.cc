#include "adaptive/mar.h"

#include <algorithm>

namespace aqp {
namespace adaptive {

const char* AdaptivePolicyName(AdaptivePolicy policy) {
  switch (policy) {
    case AdaptivePolicy::kAdaptive:
      return "adaptive";
    case AdaptivePolicy::kPinned:
      return "pinned";
    case AdaptivePolicy::kScripted:
      return "scripted";
  }
  return "?";
}

Status AdaptiveOptions::Validate() const {
  if (delta_adapt == 0) {
    return Status::InvalidArgument("delta_adapt must be >= 1");
  }
  if (window == 0) {
    return Status::InvalidArgument("window (W) must be >= 1");
  }
  if (theta_out < 0.0 || theta_out > 1.0) {
    return Status::InvalidArgument("theta_out must be in [0, 1]");
  }
  if (curpert_is_ratio &&
      (theta_curpert_ratio < 0.0 || theta_curpert_ratio > 1.0)) {
    return Status::InvalidArgument("theta_curpert_ratio must be in [0, 1]");
  }
  if (policy == AdaptivePolicy::kScripted) {
    for (size_t i = 1; i < script.size(); ++i) {
      if (script[i].at_step < script[i - 1].at_step) {
        return Status::InvalidArgument(
            "scripted transitions must be sorted by at_step");
      }
    }
  }
  return Status::OK();
}

Monitor::Monitor(const AdaptiveOptions& options)
    : options_(options),
      approx_window_{stats::SlidingWindowCounter(options.window),
                     stats::SlidingWindowCounter(options.window)},
      approx_active_(options.window) {}

void Monitor::AdvanceOneStep(const uint32_t attributed[2],
                             bool approx_active) {
  approx_window_[0].Advance(attributed[0]);
  approx_window_[1].Advance(attributed[1]);
  approx_active_.Advance(approx_active ? 1u : 0u);
  ++steps_;
}

void Monitor::OnStep(exec::Side read_side,
                     const std::vector<join::JoinMatch>& matches,
                     const join::HybridJoinCore& core, ProcessorState state) {
  // §3.3 attribution lives in the core (it owns the matched-exactly
  // flags); see HybridJoinCore::AttributeApproxMatches.
  uint32_t attributed[2] = {0, 0};
  core.AttributeApproxMatches(read_side, matches, attributed);
  const bool approx_active =
      LeftMode(state) == join::ProbeMode::kApproximate ||
      RightMode(state) == join::ProbeMode::kApproximate;
  AdvanceOneStep(attributed, approx_active);
}

void Monitor::OnBatch(const std::vector<join::StepObservables>& steps,
                      ProcessorState state) {
  // The whole batch ran in one state (transitions only happen at batch
  // boundaries), so approximate-activity is uniform across it.
  const bool approx_active =
      LeftMode(state) == join::ProbeMode::kApproximate ||
      RightMode(state) == join::ProbeMode::kApproximate;
  for (const join::StepObservables& step : steps) {
    AdvanceOneStep(step.approx_attributed, approx_active);
  }
}

stats::JoinProgress Monitor::Progress(const join::HybridJoinCore& core,
                                      bool parent_exhausted) const {
  stats::JoinProgress progress;
  progress.parents_scanned = core.store(parent_side()).size();
  progress.children_scanned = core.store(child_side()).size();
  progress.children_matched = options_.use_pairs_statistic
                                  ? core.pairs_emitted()
                                  : core.distinct_matched(child_side());
  progress.parent_exhausted = parent_exhausted;
  return progress;
}

Assessor::Assessor(const AdaptiveOptions& options)
    : options_(options), model_(options.model) {
  if (model_ == nullptr) {
    model_ = std::make_shared<stats::ParentChildBinomialModel>(
        options_.parent_table_size);
  }
}

Assessment Assessor::Assess(const Monitor& monitor,
                            const join::HybridJoinCore& core,
                            bool parent_exhausted) {
  return Assess(monitor, monitor.Progress(core, parent_exhausted));
}

Assessment Assessor::Assess(const Monitor& monitor,
                            const stats::JoinProgress& progress_in) {
  Assessment a;
  a.step = monitor.steps();

  stats::JoinProgress progress = progress_in;
  a.observed_matches = progress.children_matched;
  a.expected_matches = model_->ExpectedMatches(progress);
  a.conceded_deficit = conceded_deficit_;
  // Futility concession: count written-off matches as found, so σ only
  // reacts to losses beyond the conceded baseline.
  progress.children_matched = std::min(
      progress.children_scanned,
      progress.children_matched + conceded_deficit_);
  if (auto p = model_->ShortfallPValue(progress)) {
    a.model_assessed = true;
    a.p_value = *p;
    // theta_out == 0 disables the outlier test outright (extreme
    // shortfalls underflow the p-value to exactly 0, so "<= 0" would
    // otherwise still fire).
    a.sigma = options_.theta_out > 0.0 && a.p_value <= options_.theta_out;
  }

  const bool informative = monitor.WindowApproxActiveSteps() > 0;
  for (size_t i = 0; i < 2; ++i) {
    const auto side = static_cast<exec::Side>(i);
    a.window_approx[i] = monitor.WindowApproxMatches(side);
    a.mu_informative[i] = informative;
    if (informative) {
      if (options_.curpert_is_ratio) {
        const double density = static_cast<double>(a.window_approx[i]) /
                               static_cast<double>(options_.window);
        a.mu[i] = density <= options_.theta_curpert_ratio;
      } else {
        a.mu[i] = a.window_approx[i] <= options_.theta_curpert;
      }
      if (!a.mu[i]) ++past_perturbed_[i];
    } else {
      // No approximate probing ran in the window: no evidence, µ holds
      // vacuously (and the responder treats it as uninformative).
      a.mu[i] = true;
    }
    a.past_perturbed[i] = past_perturbed_[i];
    a.pi[i] = past_perturbed_[i] <= options_.theta_pastpert;
  }
  return a;
}

Responder::Responder(const AdaptiveOptions& options) : options_(options) {}

Decision Responder::Decide(ProcessorState current, const Assessment& a) {
  constexpr size_t kLeft = 0;
  constexpr size_t kRight = 1;
  const bool informative = a.mu_informative[kLeft] || a.mu_informative[kRight];

  if (!a.sigma) {
    futility_streak_ = 0;
    // ϕ0: no statistical evidence of variants and both inputs quiet —
    // exact matching is both effective and efficient.
    if (a.mu[kLeft] && a.mu[kRight]) {
      return Decision{ProcessorState::kLexRex, 0};
    }
    // Shortfall resolved but a perturbation region is still active:
    // hold the current configuration.
    return Decision{current, -1};
  }

  // σ holds: completeness is being lost.
  if (!informative) {
    futility_streak_ = 0;
    // ϕ1 (default case of §3.3): evidence of variants but no
    // approximate operator has run recently, so the source cannot be
    // identified — protect both inputs.
    return Decision{ProcessorState::kLapRap, 1};
  }
  if (!a.mu[kLeft] && !a.mu[kRight]) {
    futility_streak_ = 0;
    // ϕ1: both inputs currently perturbed.
    return Decision{ProcessorState::kLapRap, 1};
  }
  if (!a.mu[kLeft] && a.mu[kRight] && a.pi[kLeft]) {
    futility_streak_ = 0;
    // ϕ2: variants localized in the left input, which has been mostly
    // clean historically — match left tuples approximately only.
    return Decision{ProcessorState::kLapRex, 2};
  }
  if (a.mu[kLeft] && !a.mu[kRight] && a.pi[kRight]) {
    futility_streak_ = 0;
    // ϕ3: symmetric to ϕ2.
    return Decision{ProcessorState::kLexRap, 3};
  }
  // Stuck: σ keeps holding, yet the (informative) windows show that
  // approximate matching is finding nothing. The paper stops here
  // (§3.5); the futility extension eventually concedes and reverts.
  if (options_.enable_futility_revert && a.mu[kLeft] && a.mu[kRight] &&
      current != ProcessorState::kLexRex) {
    if (++futility_streak_ >= options_.futility_patience) {
      futility_streak_ = 0;
      return Decision{ProcessorState::kLexRex, Decision::kFutilityRevert};
    }
  }
  return Decision{current, -1};
}

}  // namespace adaptive
}  // namespace aqp
