#include "adaptive/trace.h"

#include <sstream>

#include "common/string_util.h"
#include "common/table_printer.h"

namespace aqp {
namespace adaptive {

size_t AdaptationTrace::transition_count() const {
  size_t count = 0;
  for (const AssessmentRecord& r : records_) {
    if (r.transitioned()) ++count;
  }
  return count;
}

std::optional<uint64_t> AdaptationTrace::first_transition_step() const {
  for (const AssessmentRecord& r : records_) {
    if (r.transitioned()) return r.assessment.step;
  }
  return std::nullopt;
}

std::vector<uint64_t> AdaptationTrace::EntriesInto(
    ProcessorState state) const {
  std::vector<uint64_t> steps;
  for (const AssessmentRecord& r : records_) {
    if (r.transitioned() && r.state_after == state) {
      steps.push_back(r.assessment.step);
    }
  }
  return steps;
}

std::string AdaptationTrace::ToString(size_t limit) const {
  TablePrinter table({"step", "p_value", "obs", "exp", "sigma", "A_l", "A_r",
                      "phi", "state"});
  const size_t begin =
      (limit != 0 && records_.size() > limit) ? records_.size() - limit : 0;
  for (size_t i = begin; i < records_.size(); ++i) {
    const AssessmentRecord& r = records_[i];
    const Assessment& a = r.assessment;
    std::string state = ProcessorStateCode(r.state_before);
    if (r.transitioned()) {
      state += "->";
      state += ProcessorStateCode(r.state_after);
    }
    table.AddRow({std::to_string(a.step),
                  a.model_assessed ? FormatDouble(a.p_value, 4) : "n/a",
                  std::to_string(a.observed_matches),
                  FormatDouble(a.expected_matches, 1),
                  a.sigma ? "yes" : "no", std::to_string(a.window_approx[0]),
                  std::to_string(a.window_approx[1]),
                  r.phi >= 0 ? "phi" + std::to_string(r.phi) : "-", state});
  }
  std::ostringstream os;
  table.Print(os);
  return os.str();
}

}  // namespace adaptive
}  // namespace aqp
