#include "adaptive/adaptive_join.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/timer.h"

namespace aqp {
namespace adaptive {

AdaptiveJoin::AdaptiveJoin(exec::Operator* left, exec::Operator* right,
                           AdaptiveJoinOptions options)
    : SymmetricJoin(left, right, options.join,
                    LeftMode(options.adaptive.initial_state),
                    RightMode(options.adaptive.initial_state),
                    "AdaptiveJoin"),
      options_(std::move(options)),
      monitor_(options_.adaptive),
      assessor_(options_.adaptive),
      responder_(options_.adaptive),
      cost_(options_.weights),
      state_(options_.adaptive.initial_state) {}

Status AdaptiveJoin::Open() {
  AQP_RETURN_IF_ERROR(options_.adaptive.Validate());
  return SymmetricJoin::Open();
}

void AdaptiveJoin::OnBatchCompleted(const join::StepBatchStats& batch) {
  cost_.AddSteps(state_, batch.steps.size());
  state_time_ns_[StateIndex(state_)] += batch.elapsed_ns;
  monitor_.OnBatch(batch.steps, state_);
}

uint64_t AdaptiveJoin::StepsUntilControlPoint() const {
  switch (options_.adaptive.policy) {
    case AdaptivePolicy::kPinned:
      return kNoControlPoint;
    case AdaptivePolicy::kScripted: {
      const auto& script = options_.adaptive.script;
      if (script_position_ >= script.size()) return kNoControlPoint;
      const uint64_t at = script[script_position_].at_step;
      return at > steps() ? at - steps() : 1;
    }
    case AdaptivePolicy::kAdaptive: {
      const uint64_t boundary =
          last_assessment_step_ + options_.adaptive.delta_adapt;
      return boundary > steps() ? boundary - steps() : 1;
    }
  }
  return kNoControlPoint;
}

Status AdaptiveJoin::OnQuiescentPoint() {
  switch (options_.adaptive.policy) {
    case AdaptivePolicy::kPinned:
      return Status::OK();
    case AdaptivePolicy::kScripted: {
      const auto& script = options_.adaptive.script;
      while (script_position_ < script.size() &&
             script[script_position_].at_step <= steps()) {
        const ProcessorState next = script[script_position_].state;
        ++script_position_;
        if (next != state_) {
          Assessment empty;
          empty.step = steps();
          ApplyTransition(next, empty, -1);
        }
      }
      return Status::OK();
    }
    case AdaptivePolicy::kAdaptive:
      if (steps() > 0 &&
          steps() - last_assessment_step_ >= options_.adaptive.delta_adapt) {
        RunControlLoop();
      }
      return Status::OK();
  }
  return Status::OK();
}

void AdaptiveJoin::RunControlLoop() {
  last_assessment_step_ = steps();
  const bool parent_exhausted =
      input_exhausted(options_.adaptive.parent_side);
  const Assessment assessment =
      assessor_.Assess(monitor_, core(), parent_exhausted);
  const Decision decision = responder_.Decide(state_, assessment);
  if (decision.phi == Decision::kFutilityRevert) {
    // Write off the current shortfall: approximate matching had its
    // chance and found nothing, so this deficit is unrecoverable.
    // expected - observed is the *total* shortfall, previous
    // concessions included, so this replaces rather than adds.
    const double deficit =
        assessment.expected_matches -
        static_cast<double>(assessment.observed_matches);
    assessor_.ConcedeDeficit(
        static_cast<uint64_t>(std::max(0.0, std::ceil(deficit))));
  }
  if (decision.next != state_) {
    ApplyTransition(decision.next, assessment, decision.phi);
  } else if (options_.record_trace) {
    AssessmentRecord record;
    record.assessment = assessment;
    record.state_before = state_;
    record.state_after = state_;
    record.phi = decision.phi;
    trace_.Record(std::move(record));
  }
}

void AdaptiveJoin::ApplyTransition(ProcessorState next,
                                   const Assessment& assessment, int phi) {
  AssessmentRecord record;
  record.assessment = assessment;
  record.state_before = state_;
  record.state_after = next;
  record.phi = phi;
  // SetProbeMode(side, m) catches up the structure on the *opposite*
  // side that `side`'s probes will now use; record the work as the
  // paper's switch cost.
  Timer timer;
  record.catchup_left =
      mutable_core()->SetProbeMode(exec::Side::kLeft, LeftMode(next));
  record.catchup_right =
      mutable_core()->SetProbeMode(exec::Side::kRight, RightMode(next));
  transition_time_ns_[StateIndex(next)] += timer.ElapsedNanos();
  state_ = next;
  cost_.AddTransition(next);
  if (options_.record_trace) {
    trace_.Record(std::move(record));
  }
}

}  // namespace adaptive
}  // namespace aqp
