#ifndef AQP_ADAPTIVE_ADAPTIVE_JOIN_H_
#define AQP_ADAPTIVE_ADAPTIVE_JOIN_H_

#include <array>
#include <cstdint>

#include "adaptive/cost_model.h"
#include "adaptive/mar.h"
#include "adaptive/state.h"
#include "adaptive/trace.h"
#include "join/symmetric_join.h"

namespace aqp {
namespace adaptive {

/// \brief Configuration of the adaptive join operator.
struct AdaptiveJoinOptions {
  /// Join spec, interleaving, output shape, approximate-probe knobs.
  join::SymmetricJoinOptions join;
  /// MAR thresholds, completeness model, control policy.
  AdaptiveOptions adaptive;
  /// Weights used by the run's cost accountant.
  StateWeights weights = StateWeights::Paper();
  /// Record the full assessment timeline (cheap; on by default).
  bool record_trace = true;
};

/// \brief The paper's hybrid join operator: a pipelined symmetric hash
/// join whose per-input matching mode (exact / approximate) is driven
/// at runtime by the Monitor-Assess-Respond loop.
///
/// Execution starts optimistically in `lex/rex`. Every δ_adapt steps —
/// always at a quiescent state — the monitor's observables are
/// assessed: a statistically significant shortfall of the observed
/// result size versus the parent-child binomial expectation (σ)
/// switches perturbed inputs to approximate matching (ϕ1–ϕ3); a window
/// of consistently exact matches switches back (ϕ0). Switches carry
/// their hash-structure catch-up cost, which the operator accounts for.
///
/// \code
///   AdaptiveJoinOptions options;
///   options.join.spec.left_column = 1;    // accidents.location
///   options.join.spec.right_column = 0;   // atlas.location
///   options.adaptive.parent_side = exec::Side::kRight;
///   options.adaptive.parent_table_size = atlas.size();
///   AdaptiveJoin join(&accidents_scan, &atlas_scan, options);
///   auto result = exec::CollectAll(&join);
/// \endcode
class AdaptiveJoin : public join::SymmetricJoin {
 public:
  /// Children are borrowed and must outlive the operator.
  AdaptiveJoin(exec::Operator* left, exec::Operator* right,
               AdaptiveJoinOptions options);

  Status Open() override;
  std::string name() const override { return "AdaptiveJoin"; }

  /// \name Run introspection (valid during and after execution).
  /// @{
  /// Current processor state.
  ProcessorState state() const { return state_; }
  /// Step and transition counts priced by the configured weights.
  const CostAccountant& cost() const { return cost_; }
  /// The MAR monitor (windows, step count).
  const Monitor& monitor() const { return monitor_; }
  /// Assessment/transition timeline.
  const AdaptationTrace& trace() const { return trace_; }
  /// Measured wall time spent in steps of `s`, in nanoseconds.
  int64_t state_time_ns(ProcessorState s) const {
    return state_time_ns_[StateIndex(s)];
  }
  /// Measured wall time of catch-up work for transitions *into* `s`,
  /// in nanoseconds (the raw material for the §4.3 v_i weights).
  int64_t transition_time_ns(ProcessorState s) const {
    return transition_time_ns_[StateIndex(s)];
  }
  const AdaptiveJoinOptions& adaptive_options() const { return options_; }
  /// @}

 protected:
  Status OnQuiescentPoint() override;
  /// Feeds the monitor and the cost accountant with a whole step
  /// batch's aggregated observables.
  void OnBatchCompleted(const join::StepBatchStats& batch) override;
  /// Clamps step batches so control-loop activations land at the same
  /// step counts as under tuple-at-a-time execution: the next δ_adapt
  /// boundary (adaptive), the next scripted at_step (scripted), or
  /// never (pinned).
  uint64_t StepsUntilControlPoint() const override;

 private:
  /// Runs one control-loop activation (assess + respond).
  void RunControlLoop();

  /// Enters `next`, catching up the needed hash structures; records
  /// costs and the trace entry.
  void ApplyTransition(ProcessorState next, const Assessment& assessment,
                       int phi);

  AdaptiveJoinOptions options_;
  Monitor monitor_;
  Assessor assessor_;
  Responder responder_;
  CostAccountant cost_;
  AdaptationTrace trace_;
  ProcessorState state_;
  uint64_t last_assessment_step_ = 0;
  size_t script_position_ = 0;
  std::array<int64_t, kNumProcessorStates> state_time_ns_{0, 0, 0, 0};
  std::array<int64_t, kNumProcessorStates> transition_time_ns_{0, 0, 0, 0};
};

}  // namespace adaptive
}  // namespace aqp

#endif  // AQP_ADAPTIVE_ADAPTIVE_JOIN_H_
