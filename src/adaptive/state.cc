#include "adaptive/state.h"

namespace aqp {
namespace adaptive {

using join::ProbeMode;

ProbeMode LeftMode(ProcessorState s) {
  switch (s) {
    case ProcessorState::kLexRex:
    case ProcessorState::kLexRap:
      return ProbeMode::kExact;
    case ProcessorState::kLapRex:
    case ProcessorState::kLapRap:
      return ProbeMode::kApproximate;
  }
  return ProbeMode::kExact;
}

ProbeMode RightMode(ProcessorState s) {
  switch (s) {
    case ProcessorState::kLexRex:
    case ProcessorState::kLapRex:
      return ProbeMode::kExact;
    case ProcessorState::kLexRap:
    case ProcessorState::kLapRap:
      return ProbeMode::kApproximate;
  }
  return ProbeMode::kExact;
}

ProbeMode ModeOf(ProcessorState s, exec::Side side) {
  return side == exec::Side::kLeft ? LeftMode(s) : RightMode(s);
}

ProcessorState MakeProcessorState(ProbeMode left, ProbeMode right) {
  if (left == ProbeMode::kExact) {
    return right == ProbeMode::kExact ? ProcessorState::kLexRex
                                      : ProcessorState::kLexRap;
  }
  return right == ProbeMode::kExact ? ProcessorState::kLapRex
                                    : ProcessorState::kLapRap;
}

const char* ProcessorStateName(ProcessorState s) {
  switch (s) {
    case ProcessorState::kLexRex:
      return "lex/rex";
    case ProcessorState::kLapRex:
      return "lap/rex";
    case ProcessorState::kLexRap:
      return "lex/rap";
    case ProcessorState::kLapRap:
      return "lap/rap";
  }
  return "?";
}

const char* ProcessorStateCode(ProcessorState s) {
  switch (s) {
    case ProcessorState::kLexRex:
      return "EE";
    case ProcessorState::kLapRex:
      return "AE";
    case ProcessorState::kLexRap:
      return "EA";
    case ProcessorState::kLapRap:
      return "AA";
  }
  return "?";
}

}  // namespace adaptive
}  // namespace aqp
