#ifndef AQP_ADAPTIVE_STATE_H_
#define AQP_ADAPTIVE_STATE_H_

#include <array>
#include <cstddef>

#include "join/hybrid_core.h"

namespace aqp {
namespace adaptive {

/// \brief The four query-processor states of Fig. 4.
///
/// A state fixes, per input, how tuples read from that input are
/// matched: `lex` / `rex` probe the opposite exact hash table, `lap` /
/// `rap` probe the opposite q-gram index. The enumerator order matches
/// the paper's weight vectors (§4.3):
/// [lex/rex, lap/rex, lex/rap, lap/rap].
enum class ProcessorState {
  kLexRex = 0,  ///< both inputs matched exactly (start state, "EE")
  kLapRex = 1,  ///< left approximate, right exact ("AE")
  kLexRap = 2,  ///< left exact, right approximate ("EA")
  kLapRap = 3,  ///< both approximate ("AA")
};

/// Number of processor states.
inline constexpr size_t kNumProcessorStates = 4;

/// All states, in enumerator order (for iteration in reports).
inline constexpr std::array<ProcessorState, kNumProcessorStates>
    kAllProcessorStates = {ProcessorState::kLexRex, ProcessorState::kLapRex,
                           ProcessorState::kLexRap, ProcessorState::kLapRap};

/// Dense index of a state.
inline size_t StateIndex(ProcessorState s) { return static_cast<size_t>(s); }

/// Probe mode of tuples read from the left input in state `s`.
join::ProbeMode LeftMode(ProcessorState s);

/// Probe mode of tuples read from the right input in state `s`.
join::ProbeMode RightMode(ProcessorState s);

/// Probe mode of tuples read from `side` in state `s`.
join::ProbeMode ModeOf(ProcessorState s, exec::Side side);

/// State with the given per-side probe modes.
ProcessorState MakeProcessorState(join::ProbeMode left, join::ProbeMode right);

/// Long name: "lex/rex", "lap/rex", "lex/rap", "lap/rap".
const char* ProcessorStateName(ProcessorState s);

/// Two-letter code used in the paper's Fig. 7/8: "EE", "AE", "EA",
/// "AA" (first letter = left mode, A = approximate).
const char* ProcessorStateCode(ProcessorState s);

}  // namespace adaptive
}  // namespace aqp

#endif  // AQP_ADAPTIVE_STATE_H_
