#ifndef AQP_ADAPTIVE_MAR_H_
#define AQP_ADAPTIVE_MAR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "adaptive/state.h"
#include "common/status.h"
#include "join/hybrid_core.h"
#include "join/join_types.h"
#include "stats/completeness_model.h"
#include "stats/sliding_window.h"

namespace aqp {
namespace adaptive {

/// \brief How the controller drives the processor.
enum class AdaptivePolicy {
  /// Full MAR loop (the paper's algorithm).
  kAdaptive,
  /// Stay in `initial_state` forever (baselines: pinned lex/rex is the
  /// all-exact run, pinned lap/rap the all-approximate run).
  kPinned,
  /// Replay a fixed transition script (tests, what-if analyses).
  kScripted,
};

/// "adaptive" / "pinned" / "scripted".
const char* AdaptivePolicyName(AdaptivePolicy policy);

/// \brief One entry of a scripted policy: enter `state` at the first
/// quiescent point with step count >= `at_step`.
struct ScriptedTransition {
  uint64_t at_step;
  ProcessorState state;
};

/// \brief All MAR thresholds and parameters (the paper's Table 3),
/// plus the control-policy selection.
struct AdaptiveOptions {
  /// δ_adapt: steps between successive activations of the control loop.
  uint64_t delta_adapt = 100;
  /// W: sliding-window size, in steps, for the µ predicates.
  size_t window = 100;
  /// θ_out: outlier threshold on the binomial lower-tail p-value (σ).
  /// 0 disables outlier detection entirely (the processor can then
  /// only leave lex/rex by script).
  double theta_out = 0.05;
  /// θ_curpert: µ_i holds ("input i currently unperturbed") iff the
  /// approximate matches attributed to input i within the window do
  /// not exceed this. The paper reports the tuned value 2 as a count
  /// (see DESIGN.md §4.2); set `curpert_is_ratio` to interpret the
  /// predicate as A_{t,W}/W <= theta_curpert_ratio instead.
  uint32_t theta_curpert = 2;
  bool curpert_is_ratio = false;
  double theta_curpert_ratio = 0.02;
  /// θ_pastpert: π_i holds ("input i historically mostly unperturbed")
  /// iff at most this many past assessments found input i perturbed.
  uint32_t theta_pastpert = 5;

  /// Which input is the parent (reference) table of the expected
  /// parent-child relationship (§3.2). The other is the child.
  exec::Side parent_side = exec::Side::kRight;
  /// |R|: parent-table cardinality. 0 = unknown; the binomial model
  /// then assesses only after the parent input is exhausted.
  uint64_t parent_table_size = 0;
  /// Custom completeness model; null = ParentChildBinomialModel.
  std::shared_ptr<stats::CompletenessModel> model;
  /// Use raw emitted-pair count as the observed result size O_t
  /// instead of distinct matched child tuples (see DESIGN.md).
  bool use_pairs_statistic = false;

  /// Extension (off by default — not part of the paper's evaluation):
  /// §3.5 notes that "reverting to exact join could also be motivated
  /// by realizing that the approximate join does not help in
  /// increasing the observed result size (e.g., because the estimate
  /// was simply wrong), though we do not consider this case". With
  /// this switch enabled, after `futility_patience` consecutive
  /// assessments in which σ still holds but the approximate operators
  /// produced no window evidence (µ holds on both informative
  /// windows), the responder reverts to lex/rex anyway — the shortfall
  /// is evidently not recoverable by approximate matching.
  bool enable_futility_revert = false;
  uint32_t futility_patience = 3;

  /// Control policy.
  AdaptivePolicy policy = AdaptivePolicy::kAdaptive;
  /// Start state (the paper starts optimistically in lex/rex).
  ProcessorState initial_state = ProcessorState::kLexRex;
  /// Transition script for kScripted, sorted by at_step.
  std::vector<ScriptedTransition> script;

  Status Validate() const;
};

/// \brief The monitor: maintains the observables of §3.5.
///
/// Per step it records (a) approximate matches attributed to each
/// input via the matched-exactly flags (§3.3) into per-input sliding
/// windows, and (b) whether any approximate probing was active, which
/// decides whether the µ predicates are informative.
class Monitor {
 public:
  explicit Monitor(const AdaptiveOptions& options);

  /// Ingests one completed step (tuple-at-a-time callers and tests);
  /// attribution is computed against the core's current flags.
  void OnStep(exec::Side read_side,
              const std::vector<join::JoinMatch>& matches,
              const join::HybridJoinCore& core, ProcessorState state);

  /// Ingests a whole step batch whose per-step observables were
  /// captured at step time by the batched engine. Equivalent to one
  /// OnStep per entry — the windows advance step-wise, so µ semantics
  /// do not change with batching.
  void OnBatch(const std::vector<join::StepObservables>& steps,
               ProcessorState state);

  /// Steps observed so far (t).
  uint64_t steps() const { return steps_; }

  /// A_{t,W}: approximate matches attributed to `side` in the window.
  uint64_t WindowApproxMatches(exec::Side side) const {
    return approx_window_[static_cast<size_t>(side)].Sum();
  }

  /// Steps in the window during which an approximate operator ran.
  uint64_t WindowApproxActiveSteps() const { return approx_active_.Sum(); }

  /// Join progress snapshot for the completeness model.
  stats::JoinProgress Progress(const join::HybridJoinCore& core,
                               bool parent_exhausted) const;

  exec::Side parent_side() const { return options_.parent_side; }
  exec::Side child_side() const {
    return exec::OtherSide(options_.parent_side);
  }

 private:
  /// Advances all windows by one step with the given attribution.
  void AdvanceOneStep(const uint32_t attributed[2], bool approx_active);

  AdaptiveOptions options_;
  stats::SlidingWindowCounter approx_window_[2];
  stats::SlidingWindowCounter approx_active_;
  uint64_t steps_ = 0;
};

/// \brief Everything the assessor concluded at one activation.
struct Assessment {
  uint64_t step = 0;
  /// Whether the completeness model could assess at all.
  bool model_assessed = false;
  /// Lower-tail p-value P(O <= observed) (1.0 when not assessed).
  double p_value = 1.0;
  double expected_matches = 0.0;
  uint64_t observed_matches = 0;
  /// σ: statistically significant shortfall.
  bool sigma = false;
  /// µ_i (indexed by Side): input currently unperturbed.
  bool mu[2] = {true, true};
  /// Whether approximate evidence existed to evaluate µ.
  bool mu_informative[2] = {false, false};
  /// A_{t,W} per input.
  uint64_t window_approx[2] = {0, 0};
  /// Past assessments that found input i perturbed.
  uint64_t past_perturbed[2] = {0, 0};
  /// π_i: input historically mostly unperturbed.
  bool pi[2] = {true, true};
  /// Deficit written off by past futility reverts (0 when the
  /// extension is off); σ tests the shortfall beyond this baseline.
  uint64_t conceded_deficit = 0;

  /// Field-wise equality (batch-size parity tests compare traces).
  friend bool operator==(const Assessment& a, const Assessment& b) {
    return a.step == b.step && a.model_assessed == b.model_assessed &&
           a.p_value == b.p_value &&
           a.expected_matches == b.expected_matches &&
           a.observed_matches == b.observed_matches && a.sigma == b.sigma &&
           a.mu[0] == b.mu[0] && a.mu[1] == b.mu[1] &&
           a.mu_informative[0] == b.mu_informative[0] &&
           a.mu_informative[1] == b.mu_informative[1] &&
           a.window_approx[0] == b.window_approx[0] &&
           a.window_approx[1] == b.window_approx[1] &&
           a.past_perturbed[0] == b.past_perturbed[0] &&
           a.past_perturbed[1] == b.past_perturbed[1] &&
           a.pi[0] == b.pi[0] && a.pi[1] == b.pi[1] &&
           a.conceded_deficit == b.conceded_deficit;
  }
  friend bool operator!=(const Assessment& a, const Assessment& b) {
    return !(a == b);
  }
};

/// \brief The assessor: evaluates the σ/µ/π predicates of Table 2.
class Assessor {
 public:
  /// Builds the completeness model from the options if none is given.
  explicit Assessor(const AdaptiveOptions& options);

  /// Computes predicates at the current progress point and updates the
  /// past-perturbation history.
  Assessment Assess(const Monitor& monitor,
                    const join::HybridJoinCore& core, bool parent_exhausted);

  /// Same, with the join progress supplied directly instead of read
  /// off a single engine core — the entry point of the parallel
  /// coordinator, which aggregates progress across shard cores before
  /// assessing once globally.
  Assessment Assess(const Monitor& monitor,
                    const stats::JoinProgress& progress);

  /// Writes off `deficit` missing matches as unrecoverable (futility
  /// extension): subsequent σ tests treat them as matched, so only a
  /// shortfall growing *beyond* the concession is significant again.
  void ConcedeDeficit(uint64_t deficit) { conceded_deficit_ = deficit; }
  uint64_t conceded_deficit() const { return conceded_deficit_; }

  const stats::CompletenessModel& model() const { return *model_; }

 private:
  AdaptiveOptions options_;
  std::shared_ptr<stats::CompletenessModel> model_;
  uint64_t past_perturbed_[2] = {0, 0};
  uint64_t conceded_deficit_ = 0;
};

/// \brief The responder's verdict at one activation.
struct Decision {
  /// State to run in next (== current means stay).
  ProcessorState next;
  /// Which transition predicate fired: 0..3 for ϕ0..ϕ3,
  /// kFutilityRevert for the futility extension, -1 for none.
  int phi = -1;

  /// Marker for futility-revert transitions in traces.
  static constexpr int kFutilityRevert = 4;
  /// Marker for transitions forced by a deadline governor (the
  /// soft-deadline clamp into lex/rex), not by any ϕ predicate.
  static constexpr int kDeadlineClamp = 5;
};

/// \brief The responder: maps (state, assessment) to the transitions of
/// Fig. 4 through the predicates ϕ0..ϕ3 (§3.5).
class Responder {
 public:
  explicit Responder(const AdaptiveOptions& options);

  /// Stateless ϕ evaluation plus, when enabled, the stateful futility
  /// counter (reset by any transition or by fresh window evidence).
  Decision Decide(ProcessorState current, const Assessment& a);

  /// Consecutive stuck assessments seen so far (for tests).
  uint32_t futility_streak() const { return futility_streak_; }

 private:
  AdaptiveOptions options_;
  uint32_t futility_streak_ = 0;
};

}  // namespace adaptive
}  // namespace aqp

#endif  // AQP_ADAPTIVE_MAR_H_
