#ifndef AQP_ADAPTIVE_TRACE_H_
#define AQP_ADAPTIVE_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/mar.h"
#include "adaptive/state.h"

namespace aqp {
namespace adaptive {

/// \brief One control-loop activation, as recorded by the trace.
struct AssessmentRecord {
  Assessment assessment;
  ProcessorState state_before = ProcessorState::kLexRex;
  ProcessorState state_after = ProcessorState::kLexRex;
  /// ϕ predicate that fired (-1: none / stay).
  int phi = -1;
  /// Catch-up work done by the switch, in tuples, per side index.
  uint64_t catchup_left = 0;
  uint64_t catchup_right = 0;

  bool transitioned() const { return state_before != state_after; }

  /// Field-wise equality (batch-size parity tests compare traces).
  friend bool operator==(const AssessmentRecord& a,
                         const AssessmentRecord& b) {
    return a.assessment == b.assessment &&
           a.state_before == b.state_before &&
           a.state_after == b.state_after && a.phi == b.phi &&
           a.catchup_left == b.catchup_left &&
           a.catchup_right == b.catchup_right;
  }
  friend bool operator!=(const AssessmentRecord& a,
                         const AssessmentRecord& b) {
    return !(a == b);
  }
};

/// \brief Timeline of the MAR loop over one join execution.
///
/// Consumed by tests (asserting the machine took the expected path),
/// by the experiment harness (Fig. 7's transition counts), and by
/// examples that print adaptation timelines.
class AdaptationTrace {
 public:
  void Record(AssessmentRecord record) {
    records_.push_back(std::move(record));
  }

  const std::vector<AssessmentRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Number of actual state changes.
  size_t transition_count() const;

  /// Step of the first state change, if any.
  std::optional<uint64_t> first_transition_step() const;

  /// Steps at which the processor entered `state`.
  std::vector<uint64_t> EntriesInto(ProcessorState state) const;

  /// Renders the last `limit` activations as an aligned text timeline
  /// (0 = all).
  std::string ToString(size_t limit = 0) const;

 private:
  std::vector<AssessmentRecord> records_;
};

}  // namespace adaptive
}  // namespace aqp

#endif  // AQP_ADAPTIVE_TRACE_H_
