#ifndef AQP_ADAPTIVE_COST_MODEL_H_
#define AQP_ADAPTIVE_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <string>

#include "adaptive/state.h"

namespace aqp {
namespace adaptive {

/// \brief Per-state unit costs: the weight vectors of §4.3.
///
/// `step[i]` is the cost of executing one step in state i relative to a
/// step in lex/rex; `transition[i]` is the cost of transitioning *into*
/// state i, in the same unit. The paper measures
/// w = [1, 22.14, 51.8, 70.2] and v = [122.48, 37.96, 84.99, 173.42] on
/// its testbed; the calibration benchmark derives the equivalents for
/// this implementation.
struct StateWeights {
  std::array<double, kNumProcessorStates> step{1.0, 1.0, 1.0, 1.0};
  std::array<double, kNumProcessorStates> transition{0.0, 0.0, 0.0, 0.0};

  /// The paper's published weights.
  static StateWeights Paper();

  /// Unit step weights, zero transition weights (raw step counting).
  static StateWeights Uniform();

  std::string ToString() const;
};

/// \brief Accumulates the per-state step and transition counts of one
/// run and prices them with a StateWeights vector (§4.3's
/// c_abs = Σ_i t_i·w_i + Σ_i tr_i·v_i).
class CostAccountant {
 public:
  explicit CostAccountant(StateWeights weights) : weights_(weights) {}

  /// Records one step executed in state `s`.
  void AddStep(ProcessorState s) { ++steps_[StateIndex(s)]; }

  /// Records `n` steps executed in state `s` (batched accounting: all
  /// steps of a batch share one state, so the counts aggregate).
  void AddSteps(ProcessorState s, uint64_t n) { steps_[StateIndex(s)] += n; }

  /// Records one transition into state `s`.
  void AddTransition(ProcessorState s) { ++transitions_[StateIndex(s)]; }

  /// t_i: steps executed in state `s`.
  uint64_t steps(ProcessorState s) const { return steps_[StateIndex(s)]; }

  /// tr_i: transitions into state `s`.
  uint64_t transitions(ProcessorState s) const {
    return transitions_[StateIndex(s)];
  }

  uint64_t total_steps() const;
  uint64_t total_transitions() const;

  /// Σ_i t_i · w_i.
  double StateCost() const;
  /// Σ_i tr_i · v_i.
  double TransitionCost() const;
  /// c_abs.
  double TotalCost() const;

  /// Re-prices the same counts under different weights (used to report
  /// paper-weighted and measured-weighted costs side by side).
  double TotalCostWith(const StateWeights& weights) const;

  const StateWeights& weights() const { return weights_; }

 private:
  StateWeights weights_;
  std::array<uint64_t, kNumProcessorStates> steps_{0, 0, 0, 0};
  std::array<uint64_t, kNumProcessorStates> transitions_{0, 0, 0, 0};
};

}  // namespace adaptive
}  // namespace aqp

#endif  // AQP_ADAPTIVE_COST_MODEL_H_
