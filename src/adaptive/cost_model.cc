#include "adaptive/cost_model.h"

#include <sstream>

namespace aqp {
namespace adaptive {

StateWeights StateWeights::Paper() {
  StateWeights w;
  w.step = {1.0, 22.14, 51.8, 70.2};
  w.transition = {122.48, 37.96, 84.99, 173.42};
  return w;
}

StateWeights StateWeights::Uniform() {
  StateWeights w;
  w.step = {1.0, 1.0, 1.0, 1.0};
  w.transition = {0.0, 0.0, 0.0, 0.0};
  return w;
}

std::string StateWeights::ToString() const {
  std::ostringstream os;
  os << "w=[";
  for (size_t i = 0; i < kNumProcessorStates; ++i) {
    if (i > 0) os << ", ";
    os << step[i];
  }
  os << "] v=[";
  for (size_t i = 0; i < kNumProcessorStates; ++i) {
    if (i > 0) os << ", ";
    os << transition[i];
  }
  os << "]";
  return os.str();
}

uint64_t CostAccountant::total_steps() const {
  uint64_t total = 0;
  for (uint64_t s : steps_) total += s;
  return total;
}

uint64_t CostAccountant::total_transitions() const {
  uint64_t total = 0;
  for (uint64_t t : transitions_) total += t;
  return total;
}

double CostAccountant::StateCost() const {
  double cost = 0.0;
  for (size_t i = 0; i < kNumProcessorStates; ++i) {
    cost += static_cast<double>(steps_[i]) * weights_.step[i];
  }
  return cost;
}

double CostAccountant::TransitionCost() const {
  double cost = 0.0;
  for (size_t i = 0; i < kNumProcessorStates; ++i) {
    cost += static_cast<double>(transitions_[i]) * weights_.transition[i];
  }
  return cost;
}

double CostAccountant::TotalCost() const {
  return StateCost() + TransitionCost();
}

double CostAccountant::TotalCostWith(const StateWeights& weights) const {
  double cost = 0.0;
  for (size_t i = 0; i < kNumProcessorStates; ++i) {
    cost += static_cast<double>(steps_[i]) * weights.step[i];
    cost += static_cast<double>(transitions_[i]) * weights.transition[i];
  }
  return cost;
}

}  // namespace adaptive
}  // namespace aqp
