#ifndef AQP_EXEC_INTERLEAVE_H_
#define AQP_EXEC_INTERLEAVE_H_

#include <cstdint>
#include <optional>

#include "exec/operator.h"

namespace aqp {
namespace exec {

/// \brief How a symmetric binary operator alternates between its
/// inputs.
///
/// The paper's symmetric joins scan "each of the tables in turn, one
/// tuple at a time" (§2.2) — strict alternation, the default here. The
/// proportional policy reads the larger input more often so both are
/// exhausted at about the same time (an ablation knob, see DESIGN.md).
enum class InterleavePolicy {
  /// L, R, L, R, ... then drain the survivor.
  kAlternate,
  /// Reads sides in proportion to their expected sizes.
  kProportional,
  /// Exhausts the left input before reading the right.
  kLeftFirst,
  /// Exhausts the right input before reading the left.
  kRightFirst,
};

/// Canonical name ("alternate", ...).
const char* InterleavePolicyName(InterleavePolicy policy);

/// \brief Strategy object deciding which input to read next.
class InterleaveScheduler {
 public:
  /// `left_hint`/`right_hint` are expected input cardinalities; only
  /// the proportional policy uses them (0 means unknown and falls back
  /// to alternation).
  InterleaveScheduler(InterleavePolicy policy, uint64_t left_hint,
                      uint64_t right_hint);

  /// Picks the side to read next given which inputs are exhausted;
  /// nullopt when both are. Inline: the batched engine calls this once
  /// per tuple, so an out-of-line call would tax every step.
  std::optional<Side> NextSide(bool left_exhausted, bool right_exhausted) {
    if (left_exhausted && right_exhausted) return std::nullopt;
    if (left_exhausted) return Side::kRight;
    if (right_exhausted) return Side::kLeft;
    return Preferred();
  }

  /// Informs the scheduler that one tuple was read from `side`.
  void OnRead(Side side) {
    last_ = side;
    if (side == Side::kLeft) {
      ++left_reads_;
    } else {
      ++right_reads_;
    }
  }

  /// Tuples read so far from `side`.
  uint64_t reads(Side side) const {
    return side == Side::kLeft ? left_reads_ : right_reads_;
  }

 private:
  Side Preferred() const {
    switch (policy_) {
      case InterleavePolicy::kAlternate:
        return OtherSide(last_);
      case InterleavePolicy::kProportional: {
        if (left_hint_ == 0 || right_hint_ == 0) return OtherSide(last_);
        // Pick the side that is furthest behind its proportional share.
        // Compare left_reads/left_hint vs right_reads/right_hint
        // without division.
        const unsigned __int128 lhs =
            static_cast<unsigned __int128>(left_reads_) * right_hint_;
        const unsigned __int128 rhs =
            static_cast<unsigned __int128>(right_reads_) * left_hint_;
        if (lhs == rhs) return OtherSide(last_);
        return lhs < rhs ? Side::kLeft : Side::kRight;
      }
      case InterleavePolicy::kLeftFirst:
        return Side::kLeft;
      case InterleavePolicy::kRightFirst:
        return Side::kRight;
    }
    return Side::kLeft;
  }

  InterleavePolicy policy_;
  uint64_t left_hint_;
  uint64_t right_hint_;
  uint64_t left_reads_ = 0;
  uint64_t right_reads_ = 0;
  Side last_ = Side::kRight;  // so the first alternation read is left
};

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_INTERLEAVE_H_
