#ifndef AQP_EXEC_INTERLEAVE_H_
#define AQP_EXEC_INTERLEAVE_H_

#include <cstdint>
#include <optional>

#include "exec/operator.h"

namespace aqp {
namespace exec {

/// \brief How a symmetric binary operator alternates between its
/// inputs.
///
/// The paper's symmetric joins scan "each of the tables in turn, one
/// tuple at a time" (§2.2) — strict alternation, the default here. The
/// proportional policy reads the larger input more often so both are
/// exhausted at about the same time (an ablation knob, see DESIGN.md).
enum class InterleavePolicy {
  /// L, R, L, R, ... then drain the survivor.
  kAlternate,
  /// Reads sides in proportion to their expected sizes.
  kProportional,
  /// Exhausts the left input before reading the right.
  kLeftFirst,
  /// Exhausts the right input before reading the left.
  kRightFirst,
};

/// Canonical name ("alternate", ...).
const char* InterleavePolicyName(InterleavePolicy policy);

/// \brief Strategy object deciding which input to read next.
class InterleaveScheduler {
 public:
  /// `left_hint`/`right_hint` are expected input cardinalities; only
  /// the proportional policy uses them (0 means unknown and falls back
  /// to alternation).
  InterleaveScheduler(InterleavePolicy policy, uint64_t left_hint,
                      uint64_t right_hint);

  /// Picks the side to read next given which inputs are exhausted;
  /// nullopt when both are.
  std::optional<Side> NextSide(bool left_exhausted, bool right_exhausted);

  /// Informs the scheduler that one tuple was read from `side`.
  void OnRead(Side side);

  /// Tuples read so far from `side`.
  uint64_t reads(Side side) const {
    return side == Side::kLeft ? left_reads_ : right_reads_;
  }

 private:
  Side Preferred() const;

  InterleavePolicy policy_;
  uint64_t left_hint_;
  uint64_t right_hint_;
  uint64_t left_reads_ = 0;
  uint64_t right_reads_ = 0;
  Side last_ = Side::kRight;  // so the first alternation read is left
};

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_INTERLEAVE_H_
