#ifndef AQP_EXEC_PARALLEL_SHARD_H_
#define AQP_EXEC_PARALLEL_SHARD_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "adaptive/state.h"
#include "join/hybrid_core.h"
#include "join/join_types.h"
#include "join/probe.h"
#include "storage/column_batch.h"

namespace aqp {
namespace exec {
namespace parallel {

/// \brief Bookkeeping of one input row routed to a shard. The row's
/// payload lives in the shard's per-side epoch ColumnBatch (scattered
/// there by the exchange, column slice by column slice); this record
/// carries everything else the shard needs to process it without
/// recomputing exchange work: the shard-local id it will receive in
/// its store (assigned at routing time, so routing order and store
/// order agree by construction), the row's index in the side batch,
/// and the global step sequence number. The join-key hash the exchange
/// computed to pick the shard travels in the batch's hash lane.
struct RoutedRow {
  exec::Side side = exec::Side::kLeft;
  storage::TupleId local_id = 0;
  /// Row index into the epoch's per-side ColumnBatch.
  uint32_t row = 0;
  uint64_t seq = 0;
};

/// \brief The matches of one global step, as a region of a shard's
/// flat per-epoch match buffer.
struct StepOutputs {
  uint64_t seq = 0;
  uint32_t begin = 0;
  uint32_t end = 0;
};

/// \brief One cross-shard approximate match: the JoinMatch (probe id
/// local to the probing shard, stored id local to `stored_shard`).
struct CrossMatch {
  join::JoinMatch match;
  uint32_t stored_shard = 0;
};

/// \brief One hash partition of the parallel symmetric join: its own
/// TupleStore / ExactIndex / QGramIndex pair (inside a HybridJoinCore)
/// plus the per-epoch work buffers of the two execution phases.
///
/// Partitioning is by join-key hash, so *every exact match is
/// intra-shard* (equal keys hash equally) and the shard's own step
/// loop — phase A — finds it with the exact prefix semantics of the
/// single-threaded engine: the shard processes its rows in global
/// step order, and its stores grow in that order. Approximate matches
/// may cross partitions; phase B fans each approximate probe out to
/// the other shards' q-gram indexes after the phase-A barrier, gated
/// by global sequence so a probe sees exactly the tuples the
/// single-threaded join would have indexed before it.
///
/// Tuple transport is columnar end to end: the exchange scatters
/// column slices into the shard's per-side pending ColumnBatch (no
/// Tuple object exists between child scan and shard store), and phase
/// A ingests `(key view, hash-lane hash, payload slice)` rows.
///
/// Thread contract: phase methods run on one worker at a time. During
/// phase A a shard touches only its own state. During phase B it reads
/// other shards' stores/indexes, which are frozen at the phase-A
/// barrier (gram caches included: a probing tuple's grams materialize
/// during its own phase-A probe, a stored tuple's at q-gram-index
/// insert).
class JoinShard {
 public:
  JoinShard(uint32_t index, const join::JoinSpec& spec,
            const join::ApproxProbeOptions& approx_options,
            adaptive::ProcessorState initial_state);

  /// \name Coordinator-side routing (between phase barriers).
  /// @{
  /// Stamps the per-side input batches with the children's schemas
  /// (called once per Open, before any routing; the schemas must
  /// outlive the shard).
  void BindSchemas(const storage::Schema* left,
                   const storage::Schema* right);

  /// Accepts row `src_row` of `src` for the *next* epoch: scatters the
  /// row's column slices (and its key-lane hash) into the shard's
  /// per-side pending batch and records its seq/ordinal under the
  /// shard-local id it will occupy.
  void RouteRow(exec::Side side, const storage::ColumnBatch& src,
                size_t src_row, uint64_t seq, uint32_t side_ordinal);

  /// Swaps the routed rows in as the current epoch's input and clears
  /// the per-epoch output buffers.
  void BeginEpoch();

  /// Drops every routed-but-unprocessed row (a mid-epoch routing
  /// failure abandons the epoch): clears the pending batches and pops
  /// the seq/ordinal records those rows were assigned, so the shard's
  /// routed counts return to the last completed epoch's state.
  void DiscardPending();
  /// @}

  /// \name Route-ahead staging (ingest task, overlapped with phases).
  ///
  /// While an epoch's phases run, the pipelined ingest task routes the
  /// *next* epoch into a third, fully separate buffer tier: StageRow
  /// touches only `staged_*` state, never `seq_`/`ordinal_` (read
  /// lock-free by phase-B cross-probes and the coordinator merge) nor
  /// the pending/epoch batches. At the epoch-barrier swap the
  /// coordinator calls CommitStaged — staged seq/ordinal append to the
  /// committed maps and the staged batches become the pending epoch —
  /// or DiscardStaged on a fault/finalize, which simply clears the
  /// staged tier and leaves committed state untouched.
  /// @{
  /// Stages row `src_row` of `src` for the epoch after next. Same
  /// scatter as RouteRow, into the staged tier. Only the ingest task
  /// calls this, and never concurrently with Commit/DiscardStaged.
  void StageRow(exec::Side side, const storage::ColumnBatch& src,
                size_t src_row, uint64_t seq, uint32_t side_ordinal);

  /// Routed + staged tuples of `side` (the local id the next *staged*
  /// row would receive). Used by the exchange while staging.
  size_t total_routed_count(exec::Side side) const {
    const size_t s = static_cast<size_t>(side);
    return seq_[s].size() + staged_seq_[s].size();
  }

  /// Epoch-barrier swap, staged -> pending. Requires the pending tier
  /// to be empty (the previous epoch already began).
  void CommitStaged();

  /// Drops the staged tier (ingest fault / finalize / cancel). The
  /// committed maps and the pending/epoch tiers are untouched.
  void DiscardStaged();
  /// @}

  /// \name Phase runners (worker threads).
  /// @{
  /// Phase A: the existing symmetric-join step loop over the shard's
  /// partition — store, maintain live index, probe intra-shard, record
  /// per-step match regions.
  void RunBuildPhase();

  /// Phase B: for every epoch row probing approximately, probe every
  /// *other* shard's opposite q-gram index, keeping only stored tuples
  /// with an earlier global sequence.
  void RunCrossProbePhase(const std::vector<JoinShard*>& shards);
  /// @}

  /// Applies `state`'s per-side probe modes, catching up the newly
  /// live structures; returns {left catch-up, right catch-up} counts
  /// exactly as HybridJoinCore::SetProbeMode reports them.
  std::pair<uint64_t, uint64_t> ApplyState(adaptive::ProcessorState state);

  /// \name Merge-side accessors (coordinator, after the barriers).
  /// @{
  const join::HybridJoinCore& core() const { return core_; }
  join::HybridJoinCore* mutable_core() { return &core_; }

  /// Tuples ever routed to this shard from `side` (== the shard-local
  /// id the next routed row of that side will receive).
  size_t routed_count(exec::Side side) const {
    return seq_[static_cast<size_t>(side)].size();
  }

  /// Global sequence / per-side ordinal of a stored tuple.
  uint64_t global_seq(exec::Side side, storage::TupleId id) const {
    return seq_[static_cast<size_t>(side)][id];
  }
  uint32_t side_ordinal(exec::Side side, storage::TupleId id) const {
    return ordinal_[static_cast<size_t>(side)][id];
  }

  const std::vector<StepOutputs>& step_outputs() const {
    return step_outputs_;
  }
  const std::vector<join::JoinMatch>& matches() const { return matches_; }
  const std::vector<StepOutputs>& cross_step_outputs() const {
    return cross_step_outputs_;
  }
  const std::vector<CrossMatch>& cross_matches() const {
    return cross_matches_;
  }

  /// Cumulative cross-probe work counters (introspection; the shard
  /// core's own stats cover intra-shard probes).
  const join::ApproxProbeStats& cross_probe_stats() const {
    return cross_stats_;
  }

  uint32_t index() const { return index_; }
  /// @}

  /// Reserves store capacity for expected per-shard cardinalities.
  void ReserveStores(size_t left_hint, size_t right_hint) {
    core_.ReserveStores(left_hint, right_hint);
  }

  /// \name Memory accounting (capacity-based, like the core's).
  ///
  /// Split along the pipelined-ingest ownership boundary so budget
  /// refreshes stay race-free: the *committed* figure covers state only
  /// the coordinator/workers touch (safe at a control point even while
  /// an ingest task is in flight); the *staged* figure covers the tier
  /// the ingest task writes (only that task, or the coordinator after
  /// the task-group wait, may read it).
  /// @{
  /// Core stores/indexes + pending/epoch tiers + routing maps + phase
  /// output buffers.
  uint64_t CommittedMemoryUsage() const;
  /// The route-ahead staged tier only.
  uint64_t StagedMemoryUsage() const;
  /// Both (call only when no ingest task is in flight).
  uint64_t ApproximateMemoryUsage() const {
    return CommittedMemoryUsage() + StagedMemoryUsage();
  }
  /// @}

 private:
  uint32_t index_;
  join::JoinSpec spec_;
  join::ApproxProbeOptions approx_options_;
  join::HybridJoinCore core_;

  /// Routed-but-not-yet-processed rows (next epoch) and the epoch
  /// currently being processed: per-side column batches plus the
  /// routing bookkeeping, in routing (= global step) order.
  storage::ColumnBatch pending_rows_[2];
  storage::ColumnBatch epoch_rows_[2];
  std::vector<RoutedRow> pending_meta_;
  std::vector<RoutedRow> epoch_meta_;

  /// Route-ahead tier: rows staged by the ingest task while phases run,
  /// committed into pending_* (and seq_/ordinal_) only at the barrier
  /// swap. Written by the ingest task, swapped/cleared by the
  /// coordinator after the task-group wait — never both at once.
  storage::ColumnBatch staged_rows_[2];
  std::vector<RoutedRow> staged_meta_;
  std::vector<uint64_t> staged_seq_[2];
  std::vector<uint32_t> staged_ordinal_[2];

  /// Shard-local id -> global seq / per-side ordinal, per side.
  /// Appended at routing time; read cross-shard during phase B (frozen
  /// then) and by the coordinator merge.
  std::vector<uint64_t> seq_[2];
  std::vector<uint32_t> ordinal_[2];

  /// Phase-A outputs: per-step regions over a flat match buffer.
  std::vector<StepOutputs> step_outputs_;
  std::vector<join::JoinMatch> matches_;

  /// Phase-B outputs: per-step regions over the cross-match buffer
  /// (only steps that probed approximately have a region).
  std::vector<StepOutputs> cross_step_outputs_;
  std::vector<CrossMatch> cross_matches_;

  /// Reusable probe working memory for phase B (phase A uses the
  /// core's internal scratch).
  join::ApproxProbeScratch cross_scratch_;
  std::vector<join::JoinMatch> cross_tmp_;
  join::ApproxProbeStats cross_stats_;
};

}  // namespace parallel
}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_PARALLEL_SHARD_H_
