#include "exec/parallel/thread_pool.h"

#include <algorithm>

namespace aqp {
namespace exec {
namespace parallel {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  queue_ = std::move(tasks);
  next_task_ = 0;
  in_flight_ = queue_.size();
  work_available_.notify_all();
  // The caller works too instead of blocking: one more execution lane
  // on multicore, and on a single-core host the batch typically runs
  // entirely inline, skipping the context-switch tax.
  while (next_task_ < queue_.size()) {
    std::function<void()> task = std::move(queue_[next_task_]);
    ++next_task_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;  // the caller is the waiter; no notify needed
  }
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  queue_.clear();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(
        lock, [this] { return shutdown_ || next_task_ < queue_.size(); });
    if (next_task_ >= queue_.size()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_[next_task_]);
    ++next_task_;
    lock.unlock();
    task();
    lock.lock();
    if (--in_flight_ == 0) {
      batch_done_.notify_all();
    }
  }
}

}  // namespace parallel
}  // namespace exec
}  // namespace aqp
