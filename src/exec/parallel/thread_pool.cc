#include "exec/parallel/thread_pool.h"

#include <algorithm>

namespace aqp {
namespace exec {
namespace parallel {

void TaskGroupHandle::Wait() {
  if (group_ == nullptr) return;
  pool_->WaitGroup(group_);
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

TaskGroupHandle ThreadPool::Submit(std::vector<std::function<void()>> tasks) {
  auto group = std::make_shared<internal::TaskGroup>();
  group->tasks = std::move(tasks);
  group->remaining = group->tasks.size();
  if (group->remaining == 0) {
    // Empty group: already complete, never enters the ring.
    return TaskGroupHandle(this, std::move(group));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(group);
  }
  work_available_.notify_all();
  return TaskGroupHandle(this, std::move(group));
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  Submit(std::move(tasks)).Wait();
}

void ThreadPool::RemoveFromRingLocked(
    const std::shared_ptr<internal::TaskGroup>& group) {
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i] == group) {
      ring_.erase(ring_.begin() + i);
      // Keep the cursor pointing at the same *next* group: entries at
      // or past the erased slot shifted down by one.
      if (cursor_ > i) --cursor_;
      return;
    }
  }
}

void ThreadPool::WaitGroup(const std::shared_ptr<internal::TaskGroup>& group) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Participate: drain the group's own undispatched tasks. The waiter
  // never takes another group's task, so its latency is bounded by its
  // own group's work.
  while (group->next < group->tasks.size()) {
    std::function<void()> task = std::move(group->tasks[group->next]);
    ++group->next;
    if (group->next == group->tasks.size()) {
      RemoveFromRingLocked(group);
    }
    lock.unlock();
    task();
    lock.lock();
    if (--group->remaining == 0) {
      group->done.notify_all();
    }
  }
  // Tasks taken by workers may still be in flight; the group is only
  // complete when every task has *finished*.
  group->done.wait(lock, [&group] { return group->remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !ring_.empty(); });
    if (ring_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // FIFO-fair dispatch: one task from the cursor's group, then
    // advance to the next group, so concurrent groups interleave
    // instead of the oldest group draining completely first.
    if (cursor_ >= ring_.size()) cursor_ = 0;
    std::shared_ptr<internal::TaskGroup> group = ring_[cursor_];
    std::function<void()> task = std::move(group->tasks[group->next]);
    ++group->next;
    if (group->next == group->tasks.size()) {
      // Erasing at the cursor leaves it on the following group.
      ring_.erase(ring_.begin() + cursor_);
    } else {
      ++cursor_;
    }
    lock.unlock();
    task();
    lock.lock();
    if (--group->remaining == 0) {
      group->done.notify_all();
    }
  }
}

}  // namespace parallel
}  // namespace exec
}  // namespace aqp
