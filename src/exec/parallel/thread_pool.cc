#include "exec/parallel/thread_pool.h"

#include <algorithm>

#include "common/failpoint.h"

namespace aqp {
namespace exec {
namespace parallel {

namespace {

/// Runs one task with exception containment: whatever the task throws
/// is converted to a Status here, inside the worker, so a failing task
/// can never unwind into WorkerLoop and std::terminate the process.
Status RunTaskContained(const std::function<void()>& task) {
  try {
    AQP_FAILPOINT_THROW(fail::site::kPoolTask);
    task();
    return Status::OK();
  } catch (const fail::InjectedFault& fault) {
    return fault.status();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("worker task threw a non-std::exception object");
  }
}

}  // namespace

Status TaskGroupHandle::Wait() {
  if (group_ == nullptr) return Status::OK();
  return pool_->WaitGroup(group_);
}

size_t TaskGroupHandle::error_task() const {
  // Safe without the pool mutex only after Wait() returned: the last
  // writer released the mutex before the final `remaining` decrement
  // that Wait() observed under the same mutex.
  if (group_ == nullptr) return static_cast<size_t>(-1);
  return group_->error_task;
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

TaskGroupHandle ThreadPool::Submit(std::vector<std::function<void()>> tasks) {
  auto group = std::make_shared<internal::TaskGroup>();
  group->tasks = std::move(tasks);
  group->remaining = group->tasks.size();
  if (group->remaining == 0) {
    // Empty group: already complete, never enters the ring.
    return TaskGroupHandle(this, std::move(group));
  }
  {
    sync::MutexLock lock(&mutex_);
    ring_.push_back(group);
  }
  work_available_.NotifyAll();
  return TaskGroupHandle(this, std::move(group));
}

Status ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  return Submit(std::move(tasks)).Wait();
}

void ThreadPool::RemoveFromRingLocked(
    const std::shared_ptr<internal::TaskGroup>& group) {
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i] == group) {
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(i));
      // Keep the cursor pointing at the same *next* group: entries at
      // or past the erased slot shifted down by one.
      if (cursor_ > i) --cursor_;
      return;
    }
  }
}

void ThreadPool::RecordTaskResultLocked(internal::TaskGroup* group,
                                        size_t task_index,
                                        const Status& status) {
  if (!status.ok() && group->error.ok()) {
    group->error = status;
    group->error_task = task_index;
  }
}

Status ThreadPool::WaitGroup(const std::shared_ptr<internal::TaskGroup>& group) {
  mutex_.Lock();
  // Participate: drain the group's own undispatched tasks. The waiter
  // never takes another group's task, so its latency is bounded by its
  // own group's work.
  while (group->next < group->tasks.size()) {
    const size_t index = group->next;
    std::function<void()> task = std::move(group->tasks[index]);
    ++group->next;
    if (group->next == group->tasks.size()) {
      RemoveFromRingLocked(group);
    }
    mutex_.Unlock();
    Status status = RunTaskContained(task);
    mutex_.Lock();
    RecordTaskResultLocked(group.get(), index, status);
    if (--group->remaining == 0) {
      group->done.NotifyAll();
    }
  }
  // Tasks taken by workers may still be in flight; the group is only
  // complete when every task has *finished*.
  while (group->remaining != 0) {
    group->done.Wait(mutex_);
  }
  Status error = group->error;
  mutex_.Unlock();
  return error;
}

void ThreadPool::WorkerLoop() {
  mutex_.Lock();
  while (true) {
    while (!shutdown_ && ring_.empty()) {
      work_available_.Wait(mutex_);
    }
    if (ring_.empty()) {
      if (shutdown_) {
        mutex_.Unlock();
        return;
      }
      continue;
    }
    // FIFO-fair dispatch: one task from the cursor's group, then
    // advance to the next group, so concurrent groups interleave
    // instead of the oldest group draining completely first.
    if (cursor_ >= ring_.size()) cursor_ = 0;
    std::shared_ptr<internal::TaskGroup> group = ring_[cursor_];
    const size_t index = group->next;
    std::function<void()> task = std::move(group->tasks[index]);
    ++group->next;
    if (group->next == group->tasks.size()) {
      // Erasing at the cursor leaves it on the following group.
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    } else {
      ++cursor_;
    }
    mutex_.Unlock();
    Status status = RunTaskContained(task);
    mutex_.Lock();
    RecordTaskResultLocked(group.get(), index, status);
    if (--group->remaining == 0) {
      group->done.NotifyAll();
    }
  }
}

}  // namespace parallel
}  // namespace exec
}  // namespace aqp
