#ifndef AQP_EXEC_PARALLEL_THREAD_POOL_H_
#define AQP_EXEC_PARALLEL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace aqp {
namespace exec {
namespace parallel {

class ThreadPool;

namespace internal {

/// \brief One submitted batch of tasks, tracked until every task has
/// *completed* (not merely been dispatched). All fields are guarded by
/// the owning pool's `mutex_`; `done` waits on that mutex. (The
/// guard cannot be spelled as a GUARDED_BY attribute — the analysis
/// has no way to name another object's member through the shared_ptr —
/// so enforcement happens one level up: every ThreadPool method that
/// touches a group is annotated AQP_REQUIRES(mutex_).)
struct TaskGroup {
  std::vector<std::function<void()>> tasks;
  /// Index of the next undispatched task.
  size_t next = 0;
  /// Tasks not yet completed (dispatched or not).
  size_t remaining = 0;
  /// Signalled when `remaining` reaches zero.
  sync::CondVar done;
  /// First error raised by a task of this group (a thrown exception is
  /// contained and converted; it never crosses the pool boundary).
  /// Sticky: later errors of the same group are dropped.
  Status error;
  /// Submission index of the task that raised `error`.
  size_t error_task = static_cast<size_t>(-1);
};

}  // namespace internal

/// \brief Completion handle of one submitted task group.
///
/// Wait() is the group's barrier: it returns only once every task of
/// the group has finished executing. The waiting thread participates
/// by running *its own group's* undispatched tasks (never another
/// group's — a waiter's latency is bounded by its own work, and on a
/// single-core host a lone group still runs entirely inline, exactly
/// like the old Run()). Waiting twice is harmless; a default-
/// constructed handle is an already-completed empty group.
class TaskGroupHandle {
 public:
  TaskGroupHandle() = default;

  /// Blocks until every task of the group has completed, executing the
  /// group's own undispatched tasks on the calling thread meanwhile.
  /// Returns the group's sticky error: OK when every task finished
  /// cleanly, else the first task failure — a thrown exception is
  /// contained inside the worker and surfaces here as a Status instead
  /// of terminating the process. Even on error, every task of the
  /// group has run to completion (or containment) before Wait returns,
  /// so the caller's accounting stays simple.
  Status Wait();

  /// After Wait() returned non-OK: the submission index of the task
  /// that raised the error (SIZE_MAX when the group succeeded).
  size_t error_task() const;

  /// True iff the handle refers to a submitted group.
  bool valid() const { return group_ != nullptr; }

 private:
  friend class ThreadPool;
  TaskGroupHandle(ThreadPool* pool, std::shared_ptr<internal::TaskGroup> group)
      : pool_(pool), group_(std::move(group)) {}

  ThreadPool* pool_ = nullptr;
  std::shared_ptr<internal::TaskGroup> group_;
};

/// \brief Shared worker pool with task-group submission.
///
/// Multiple clients — e.g. the epoch coordinators of concurrent
/// linkage queries — each submit one task *group* per phase and wait
/// on the group's handle. Groups from different submitters coexist:
/// dispatch cycles round-robin over the live groups in FIFO arrival
/// order, one task at a time, so a group with many tasks (a wide
/// all-approximate query) cannot monopolize the workers while a
/// two-task group waits behind it.
///
/// Wait() is each group's completion barrier: every task write of a
/// phase happens-before every read after the matching Wait(), through
/// the pool's mutex — the epoch-barrier guarantee the globally
/// coordinated MAR loop relies on, per group instead of pool-wide, so
/// one pool can carry N concurrent queries' epochs.
///
/// Workers are started once and parked when no group has undispatched
/// tasks; per-phase cost is the lock/notify handshakes, not thread
/// creation.
///
/// Lock hierarchy: `mutex_` is a leaf — no other lock is acquired
/// while it is held (tasks run with it released).
class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t threads);

  /// Joins the workers. Outstanding tasks complete first. Destroying
  /// the pool while a TaskGroupHandle is still being waited on is a
  /// caller bug.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `tasks` as one group and returns its completion handle.
  /// Tasks may start on workers immediately; call Wait() on the handle
  /// to both contribute the calling thread and block for completion.
  /// Tasks must not call Submit()+Wait() on the same pool (a task
  /// occupying a worker while waiting can deadlock the pool).
  TaskGroupHandle Submit(std::vector<std::function<void()>> tasks)
      AQP_EXCLUDES(mutex_);

  /// Submit + Wait: executes every task (in any order, on any worker
  /// or on the calling thread) and returns when all have completed.
  /// Returns the group's first task error (see TaskGroupHandle::Wait).
  Status Run(std::vector<std::function<void()>> tasks) AQP_EXCLUDES(mutex_);

  size_t thread_count() const { return workers_.size(); }

 private:
  friend class TaskGroupHandle;

  void WorkerLoop() AQP_EXCLUDES(mutex_);
  /// Drops `group` from the dispatch ring (all tasks dispatched).
  void RemoveFromRingLocked(const std::shared_ptr<internal::TaskGroup>& group)
      AQP_REQUIRES(mutex_);
  /// Records `status` as the group's sticky error (first error wins;
  /// the group's remaining tasks still run — completion accounting
  /// stays uniform and callers discard their output on error).
  void RecordTaskResultLocked(internal::TaskGroup* group, size_t task_index,
                              const Status& status) AQP_REQUIRES(mutex_);
  /// Runs the group's own tasks on the calling thread, then blocks
  /// until the group completes. Returns the group's sticky error.
  Status WaitGroup(const std::shared_ptr<internal::TaskGroup>& group)
      AQP_EXCLUDES(mutex_);

  sync::Mutex mutex_{"thread_pool.mutex_"};
  sync::CondVar work_available_;
  /// Groups with undispatched tasks, in arrival order; cursor_ cycles
  /// over them round-robin, one task per visit.
  std::vector<std::shared_ptr<internal::TaskGroup>> ring_
      AQP_GUARDED_BY(mutex_);
  size_t cursor_ AQP_GUARDED_BY(mutex_) = 0;
  bool shutdown_ AQP_GUARDED_BY(mutex_) = false;
  /// Written only by the constructor; joined by the destructor.
  std::vector<std::thread> workers_;
};

}  // namespace parallel
}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_PARALLEL_THREAD_POOL_H_
