#ifndef AQP_EXEC_PARALLEL_THREAD_POOL_H_
#define AQP_EXEC_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aqp {
namespace exec {
namespace parallel {

/// \brief Fixed-size worker pool for the epoch phases of the parallel
/// join.
///
/// The coordinator submits one task batch per phase (one task per
/// shard) and blocks until all of them finish — Run() is the epoch
/// barrier the globally coordinated MAR loop relies on: every shard
/// write of phase k happens-before every read of phase k+1, through
/// the pool's mutex.
///
/// Workers are started once and parked between phases; per-epoch cost
/// is two lock/notify handshakes per worker, not thread creation.
class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t threads);

  /// Drains and joins the workers. Outstanding tasks complete first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes every task (in any order, on any worker or on the
  /// calling thread, which participates instead of blocking) and
  /// returns when all have completed. Tasks must not call Run()
  /// themselves.
  void Run(std::vector<std::function<void()>> tasks);

  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::vector<std::function<void()>> queue_;
  size_t next_task_ = 0;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace parallel
}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_PARALLEL_THREAD_POOL_H_
