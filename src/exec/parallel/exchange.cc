#include "exec/parallel/exchange.h"

#include <algorithm>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/macros.h"

namespace aqp {
namespace exec {
namespace parallel {

RadixExchange::RadixExchange(exec::Operator* left, exec::Operator* right,
                             const join::JoinSpec& spec,
                             exec::InterleavePolicy policy,
                             uint64_t left_hint, uint64_t right_hint,
                             size_t batch_size, size_t num_shards,
                             SourceRetryOptions retry)
    : inputs_{left, right},
      spec_(spec),
      policy_(policy),
      hints_{left_hint, right_hint},
      batch_size_(std::max<size_t>(1, batch_size)),
      num_shards_(std::max<size_t>(1, num_shards)),
      retry_(retry),
      scheduler_(policy, left_hint, right_hint) {}

void RadixExchange::Reset() {
  scheduler_ = exec::InterleaveScheduler(policy_, hints_[0], hints_[1]);
  for (size_t i = 0; i < 2; ++i) {
    input_batch_[i].Reset(nullptr, batch_size_);
    input_pos_[i] = 0;
    done_[i] = false;
    side_count_[i] = 0;
  }
  steps_ = 0;
  source_retries_ = 0;
  for (size_t i = 0; i < 2; ++i) {
    pub_side_count_[i] = 0;
    pub_done_[i] = false;
  }
  pub_steps_ = 0;
}

Status RadixExchange::RefillOnce(exec::Side side) {
  const size_t i = static_cast<size_t>(side);
  input_batch_[i].Reset(&inputs_[i]->output_schema(), batch_size_);
  input_pos_[i] = 0;
  Status status = inputs_[i]->NextColumnBatch(&input_batch_[i]);
  if (status.ok() && !input_batch_[i].empty()) {
    // One vectorized hash pass per refill; the lane travels with every
    // scattered row and is cached by the target shard's store.
    input_batch_[i].ComputeKeyHashes(spec_.column(side));
  }
  return status;
}

Status RadixExchange::Refill(exec::Side side) {
  Status status = RefillOnce(side);
  // Transient-failure retry: re-attempt the whole refill. A failed
  // NextColumnBatch delivered no rows (the Operator contract discards
  // the partial batch), so retrying cannot duplicate input.
  size_t attempt = 0;
  while (status.IsUnavailable() && attempt < retry_.max_retries) {
    ++attempt;
    ++source_retries_;
    if (retry_.backoff_base.count() > 0) {
      std::this_thread::sleep_for(retry_.backoff_base * (1 << (attempt - 1)));
    }
    status = RefillOnce(side);
  }
  if (!status.ok() && attempt > 0) {
    return status.WithContext("after " + std::to_string(attempt) +
                              " retry(ies) on the " +
                              std::string(exec::SideName(side)) + " source");
  }
  return status;
}

Result<uint64_t> RadixExchange::RouteEpoch(
    uint64_t max_steps, const std::vector<JoinShard*>& shards,
    std::vector<RouteEntry>* route) {
  AQP_FAILPOINT(fail::site::kExchangeRoute);
  Result<uint64_t> routed = RouteLoop(max_steps, shards, route, false);
  // Serial ingest publishes immediately — including after a mid-epoch
  // error, so HandleEpochFault's RollbackCounts of the partial epoch
  // nets both counter sets back to the last completed epoch.
  Publish();
  return routed;
}

Result<uint64_t> RadixExchange::StageEpoch(
    uint64_t max_steps, const std::vector<JoinShard*>& shards,
    std::vector<RouteEntry>* route) {
  // The route site fires here too, so an armed fault hits the same
  // per-epoch evaluation count whether ingest is pipelined or serial.
  AQP_FAILPOINT(fail::site::kExchangeRoute);
  AQP_FAILPOINT(fail::site::kExchangeStage);
  return RouteLoop(max_steps, shards, route, true);
}

void RadixExchange::CommitStaged(const std::vector<JoinShard*>& shards) {
  Publish();
  for (JoinShard* shard : shards) shard->CommitStaged();
}

void RadixExchange::DiscardStaged(const std::vector<JoinShard*>& shards) {
  steps_ = pub_steps_;
  for (size_t i = 0; i < 2; ++i) {
    side_count_[i] = pub_side_count_[i];
    done_[i] = pub_done_[i];
  }
  for (JoinShard* shard : shards) shard->DiscardStaged();
}

Result<uint64_t> RadixExchange::RouteLoop(
    uint64_t max_steps, const std::vector<JoinShard*>& shards,
    std::vector<RouteEntry>* route, bool staged) {
  uint64_t routed = 0;
  while (routed < max_steps) {
    const auto next_side = scheduler_.NextSide(done_[0], done_[1]);
    if (!next_side.has_value()) break;  // both inputs exhausted
    const exec::Side side = *next_side;
    const size_t i = static_cast<size_t>(side);
    if (input_pos_[i] >= input_batch_[i].size()) {
      AQP_RETURN_IF_ERROR(Refill(side));
      if (input_batch_[i].empty()) {
        // End-of-stream, discovered at the same read index as the
        // single-threaded engine (the buffer drains exactly when that
        // engine would have read the tuple after the last).
        done_[i] = true;
        continue;
      }
    }
    // RouteEntry::ordinal, RoutedRow::row, and shard-local TupleIds
    // are all 32-bit and bounded by the per-side routed count; past
    // 2^32 - 1 rows they would silently truncate and alias earlier
    // tuples' flags/stores. Checked in every build type — one compare
    // per routed row.
    if (side_count_[i] > std::numeric_limits<uint32_t>::max()) {
      return Status::ResourceExhausted(
          "RadixExchange: " + std::string(exec::SideName(side)) +
          " side exceeds 2^32 routed tuples; 32-bit ordinals would "
          "truncate");
    }
    const size_t row = input_pos_[i]++;
    scheduler_.OnRead(side);

    // Radix step: mix the lane's precomputed FNV-1a hash so the modulo
    // sees avalanche-quality bits, then partition.
    const uint64_t key_hash = input_batch_[i].key_hash(row);
    const uint32_t shard =
        static_cast<uint32_t>(Mix64(key_hash) % num_shards_);

    RouteEntry entry;
    entry.shard = shard;
    entry.side = side;
    entry.ordinal = static_cast<uint32_t>(side_count_[i]);
    // total_routed_count == routed_count when nothing is staged, so the
    // serial path is unchanged.
    entry.local_id = static_cast<storage::TupleId>(
        shards[shard]->total_routed_count(side));
    if (staged) {
      shards[shard]->StageRow(side, input_batch_[i], row, steps_,
                              entry.ordinal);
    } else {
      shards[shard]->RouteRow(side, input_batch_[i], row, steps_,
                              entry.ordinal);
    }
    route->push_back(entry);

    ++side_count_[i];
    ++steps_;
    ++routed;
  }
  return routed;
}

}  // namespace parallel
}  // namespace exec
}  // namespace aqp
