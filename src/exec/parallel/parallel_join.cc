#include "exec/parallel/parallel_join.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "exec/csv_io.h"
#include "exec/prefetch.h"

namespace aqp {
namespace exec {
namespace parallel {

using adaptive::AdaptivePolicy;
using adaptive::Assessment;
using adaptive::Decision;
using adaptive::LeftMode;
using adaptive::ProcessorState;
using adaptive::RightMode;

bool DefaultPipelineIngest() {
  static const bool kDefault = [] {
    const char* env = std::getenv("AQP_PIPELINE_INGEST");
    if (env == nullptr) return true;
    const std::string value(env);
    return !(value == "0" || value == "off" || value == "OFF" ||
             value == "false" || value == "FALSE" || value == "no" ||
             value == "NO");
  }();
  return kDefault;
}

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

size_t ResolveShardCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<unsigned>(hw == 0 ? 1 : hw, 64));
}

/// True iff a fault of this code may be degraded into an early
/// finalization. Internal errors signal broken invariants (the global
/// state cannot be trusted), cancellation is a teardown order, and a
/// failed precondition is a caller bug — none of those produce a
/// result worth delivering.
bool RecoverableFaultCode(const Status& status) {
  return !status.IsInternal() && !status.IsCancelled() &&
         !status.IsFailedPrecondition();
}

/// Pulls the "site=<name>" breadcrumb out of an injected fault's
/// message (empty when the error carries none).
std::string ExtractFaultSite(const Status& status) {
  const std::string& message = status.message();
  const size_t pos = message.find("site=");
  if (pos == std::string::npos) return "";
  size_t end = pos + 5;
  while (end < message.size() && message[end] != ':' &&
         message[end] != ' ') {
    ++end;
  }
  return message.substr(pos + 5, end - (pos + 5));
}

}  // namespace

ParallelAdaptiveJoin::ParallelAdaptiveJoin(exec::Operator* left,
                                           exec::Operator* right,
                                           ParallelJoinOptions options)
    : left_(left),
      right_(right),
      options_(std::move(options)),
      cost_(options_.base.weights),
      state_(options_.base.adaptive.initial_state) {
  options_.num_shards = ResolveShardCount(options_.num_shards);
  if (options_.unbounded_epoch_steps == 0) {
    options_.unbounded_epoch_steps = 4096;
  }
  monitor_ = std::make_unique<adaptive::Monitor>(options_.base.adaptive);
  assessor_ = std::make_unique<adaptive::Assessor>(options_.base.adaptive);
  responder_ = std::make_unique<adaptive::Responder>(options_.base.adaptive);
}

ParallelAdaptiveJoin::~ParallelAdaptiveJoin() {
  // An ingest task still in flight (Close skipped, e.g. teardown after
  // an error) references this object's exchange and shards; it must
  // finish before any member is destroyed — in particular on a shared
  // pool, which outlives this operator.
  AbandonStagedIngest();
}

Status ParallelAdaptiveJoin::Open() {
  if (open_) return Status::FailedPrecondition(name() + " already open");
  AQP_RETURN_IF_ERROR(options_.base.adaptive.Validate());
  const join::SymmetricJoinOptions& join_options = options_.base.join;
  AQP_RETURN_IF_ERROR(join_options.spec.ValidateAgainstSchemas(
      left_->output_schema(), right_->output_schema()));
  AQP_RETURN_IF_ERROR(left_->Open());
  exec::OpenGuard left_guard(left_);
  AQP_RETURN_IF_ERROR(right_->Open());
  exec::OpenGuard right_guard(right_);
  // Both children are open and guarded: an error returned here must
  // close them both (the OpenGuard regression surface).
  AQP_FAILPOINT(fail::site::kParallelOpen);
  output_schema_ =
      join::JoinOutputSchema(left_->output_schema(), right_->output_schema(),
                             join_options.emit_similarity);
  left_width_ = left_->output_schema().num_fields();

  const size_t n = options_.num_shards;
  shards_.clear();
  shard_ptrs_.clear();
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<JoinShard>(
        static_cast<uint32_t>(i), join_options.spec, join_options.approx,
        state_));
    shards_.back()->BindSchemas(&left_->output_schema(),
                                &right_->output_schema());
    // Per-shard share of the size hints (slack for hash skew).
    shards_.back()->ReserveStores(
        join_options.left_size_hint == 0
            ? 0
            : join_options.left_size_hint / n + join_options.left_size_hint / (2 * n) + 1,
        join_options.right_size_hint == 0
            ? 0
            : join_options.right_size_hint / n + join_options.right_size_hint / (2 * n) + 1);
    shard_ptrs_.push_back(shards_.back().get());
  }
  exchange_ = std::make_unique<RadixExchange>(
      left_, right_, join_options.spec, join_options.interleave,
      join_options.left_size_hint, join_options.right_size_hint,
      join_options.batch_size, n, options_.source_retry);
  exchange_->Reset();
  if (options_.shared_pool != nullptr) {
    // Serving mode: phase task groups go to the injected pool, which
    // interleaves them fairly with other queries' groups.
    active_pool_ = options_.shared_pool;
  } else if (n > 1 || options_.pipeline_ingest) {
    // The coordinator participates in every phase group, so n - 1
    // workers give exactly n execution lanes for n per-shard tasks.
    // Pipelined ingest needs at least one worker even single-sharded,
    // so the ingest task has a lane to overlap on.
    pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1, n - 1));
    active_pool_ = pool_.get();
  } else {
    pool_ = nullptr;
    active_pool_ = nullptr;
  }

  merge_cursor_.assign(n, 0);
  cross_cursor_.assign(n, 0);
  for (size_t s = 0; s < 2; ++s) {
    matched_exactly_[s].clear();
    matched_any_[s].clear();
    matched_any_count_[s] = 0;
  }
  pairs_emitted_ = 0;
  exact_pairs_ = 0;
  approximate_pairs_ = 0;
  out_buffer_.clear();
  out_pos_ = 0;
  stream_done_ = false;
  exact_only_ = false;
  finalize_requested_ = false;
  finalized_early_ = false;
  epoch_ = 0;
  fault_.reset();
  pump_error_ = Status::OK();
  last_assessment_step_ = 0;
  script_position_ = 0;
  staged_route_.clear();
  staged_budget_ = 0;
  ingest_status_ = Status::OK();
  ingest_handle_ = TaskGroupHandle();
  ingest_inflight_ = false;
  ingest_stats_ = IngestStats();
  shard_nodes_.clear();
  coord_node_.reset();
  if (options_.memory_budget != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      shard_nodes_.push_back(std::make_unique<mem::BudgetNode>(
          "shard" + std::to_string(i), options_.memory_budget));
    }
    coord_node_ = std::make_unique<mem::BudgetNode>("coordinator",
                                                    options_.memory_budget);
  }
  memory_bytes_ = 0;
  peak_memory_bytes_ = 0;
  ingest_side_bytes_.store(0, std::memory_order_relaxed);
  left_guard.Dismiss();
  right_guard.Dismiss();
  open_ = true;
  return Status::OK();
}

Status ParallelAdaptiveJoin::Close() {
  if (!open_) return Status::FailedPrecondition(name() + " not open");
  open_ = false;
  // The in-flight ingest task (if any) reads the children through the
  // exchange; it must drain before they close — especially on a shared
  // pool, where resetting pool_ below joins nothing.
  AbandonStagedIngest();
  pool_.reset();
  active_pool_ = nullptr;
  AQP_RETURN_IF_ERROR(left_->Close());
  AQP_RETURN_IF_ERROR(right_->Close());
  return Status::OK();
}

uint64_t ParallelAdaptiveJoin::StepsToNextControlPoint() const {
  const adaptive::AdaptiveOptions& adaptive = options_.base.adaptive;
  const uint64_t steps = exchange_->steps();
  switch (adaptive.policy) {
    case AdaptivePolicy::kPinned:
      return options_.unbounded_epoch_steps;
    case AdaptivePolicy::kScripted: {
      if (script_position_ >= adaptive.script.size()) {
        return options_.unbounded_epoch_steps;
      }
      const uint64_t at = adaptive.script[script_position_].at_step;
      return at > steps ? at - steps : 1;
    }
    case AdaptivePolicy::kAdaptive: {
      const uint64_t boundary = last_assessment_step_ + adaptive.delta_adapt;
      return boundary > steps ? boundary - steps : 1;
    }
  }
  return options_.unbounded_epoch_steps;
}

Status ParallelAdaptiveJoin::ControlPoint() {
  const adaptive::AdaptiveOptions& adaptive = options_.base.adaptive;
  const uint64_t steps = exchange_->steps();
  switch (adaptive.policy) {
    case AdaptivePolicy::kPinned:
      return Status::OK();
    case AdaptivePolicy::kScripted: {
      while (script_position_ < adaptive.script.size() &&
             adaptive.script[script_position_].at_step <= steps) {
        const ProcessorState next = adaptive.script[script_position_].state;
        ++script_position_;
        if (next != state_) {
          Assessment empty;
          empty.step = steps;
          AQP_RETURN_IF_ERROR(ApplyTransition(next, empty, -1));
        }
      }
      return Status::OK();
    }
    case AdaptivePolicy::kAdaptive:
      if (steps > 0 && steps - last_assessment_step_ >= adaptive.delta_adapt) {
        return RunControlLoop();
      }
      return Status::OK();
  }
  return Status::OK();
}

stats::JoinProgress ParallelAdaptiveJoin::Progress() const {
  const adaptive::AdaptiveOptions& adaptive = options_.base.adaptive;
  const exec::Side child_side = exec::OtherSide(adaptive.parent_side);
  // The global join progress the single-threaded monitor would read
  // off its one core, aggregated across shards by the coordinator.
  stats::JoinProgress progress;
  progress.parents_scanned = exchange_->side_count(adaptive.parent_side);
  progress.children_scanned = exchange_->side_count(child_side);
  progress.children_matched =
      adaptive.use_pairs_statistic
          ? pairs_emitted_
          : matched_any_count_[static_cast<size_t>(child_side)];
  progress.parent_exhausted = exchange_->input_exhausted(adaptive.parent_side);
  return progress;
}

CompletenessStats ParallelAdaptiveJoin::Completeness() const {
  CompletenessStats out;
  if (exchange_ == nullptr) return out;
  const stats::JoinProgress progress = Progress();
  out.expected_matches = assessor_->model().ExpectedMatches(progress);
  out.observed_matches = progress.children_matched;
  out.ratio = out.expected_matches > 0.0
                  ? std::min(1.0, static_cast<double>(out.observed_matches) /
                                      out.expected_matches)
                  : 1.0;
  // CSV feeds report quarantined (skipped-and-logged) records so a
  // "complete" scan over a dirty file is never silently lossy.
  for (const exec::Operator* child : {left_, right_}) {
    if (const auto* csv = dynamic_cast<const exec::CsvSource*>(child)) {
      out.quarantined_rows += csv->bad_rows();
    }
  }
  return out;
}

Status ParallelAdaptiveJoin::RunControlLoop() {
  last_assessment_step_ = exchange_->steps();
  const stats::JoinProgress progress = Progress();
  const Assessment assessment = assessor_->Assess(*monitor_, progress);
  Decision decision = responder_->Decide(state_, assessment);
  if (exact_only_ && decision.next != ProcessorState::kLexRex) {
    // Past the soft deadline the responder may not choose approximate
    // states; the PumpEpoch clamp already forced lex/rex, so this can
    // only turn a would-be switch into a stay.
    decision.next = ProcessorState::kLexRex;
    decision.phi = Decision::kDeadlineClamp;
  }
  if (decision.phi == Decision::kFutilityRevert) {
    const double deficit =
        assessment.expected_matches -
        static_cast<double>(assessment.observed_matches);
    assessor_->ConcedeDeficit(
        static_cast<uint64_t>(std::max(0.0, std::ceil(deficit))));
  }
  if (decision.next != state_) {
    return ApplyTransition(decision.next, assessment, decision.phi);
  } else if (options_.base.record_trace) {
    adaptive::AssessmentRecord record;
    record.assessment = assessment;
    record.state_before = state_;
    record.state_after = state_;
    record.phi = decision.phi;
    trace_.Record(std::move(record));
  }
  return Status::OK();
}

Status ParallelAdaptiveJoin::ApplyTransition(ProcessorState next,
                                             const Assessment& assessment,
                                             int phi) {
  adaptive::AssessmentRecord record;
  record.assessment = assessment;
  record.state_before = state_;
  record.state_after = next;
  record.phi = phi;
  // Broadcast: every shard enters the new state at the epoch barrier,
  // catching up its own lagging structures in parallel. The summed
  // per-shard catch-up counts equal the single-threaded engine's,
  // because the shard stores partition the global store and every
  // shard last switched at the same global boundary.
  std::vector<std::pair<uint64_t, uint64_t>> catchups(shards_.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    JoinShard* shard = shard_ptrs_[i];
    auto* slot = &catchups[i];
    tasks.push_back([shard, next, slot] { *slot = shard->ApplyState(next); });
  }
  Status broadcast = RunTasks(std::move(tasks));
  if (!broadcast.ok()) {
    // Some shards switched, some did not: the safe-state-transfer
    // invariant is broken and no epoch may run on the mixed states.
    // Never degradable — the caller makes this the sticky pump error.
    return Status::Internal("state-transition broadcast failed: " +
                            broadcast.ToString());
  }
  for (const auto& [left, right] : catchups) {
    record.catchup_left += left;
    record.catchup_right += right;
  }
  state_ = next;
  cost_.AddTransition(next);
  if (options_.base.record_trace) {
    trace_.Record(std::move(record));
  }
  return Status::OK();
}

Status ParallelAdaptiveJoin::PumpEpoch(bool* stream_ended) {
  *stream_ended = false;
  if (!pump_error_.ok()) return pump_error_;
  // Epoch boundary: every shard is quiescent — safe for adaptation,
  // deadline enforcement, and teardown alike. Budgeted runs charge
  // their accounting tree first, so the governor's view (and any
  // soft/hard budget decision it takes) sees this control point's
  // footprint, not the previous one's.
  if (options_.memory_budget != nullptr) {
    Status charged = RefreshMemoryAccounting();
    if (!charged.ok()) {
      // An injected charge fault (`budget.charge`) degrades like any
      // recoverable epoch fault; route_ was cleared after the last
      // merge, so there is nothing to roll back.
      return HandleEpochFault(std::move(charged), /*shard=*/-1,
                              stream_ended);
    }
  }
  if (options_.governor) {
    EpochView view;
    view.steps = exchange_->steps();
    view.pairs_emitted = pairs_emitted_;
    view.state = state_;
    view.memory_bytes = memory_bytes_;
    switch (options_.governor(view)) {
      case EpochDirective::kProceed:
        break;
      case EpochDirective::kForceExactOnly:
        exact_only_ = true;
        break;
      case EpochDirective::kFinalize:
        finalize_requested_ = true;
        break;
      case EpochDirective::kCancel:
        // Buffered output is not delivered, and neither is the staged
        // epoch: drain the ingest task and drop its work.
        AbandonStagedIngest();
        pump_error_ = Status::Cancelled(name() + " cancelled at step " +
                                        std::to_string(exchange_->steps()));
        return pump_error_;
    }
  }
  if (finalize_requested_) {
    // Hard deadline at the swap point: the staged epoch (in flight or
    // ready) is exactly the input the serial engine would not have
    // routed yet — discard it, ingest errors included.
    AbandonStagedIngest();
    finalized_early_ = finalized_early_ ||
                       !exchange_->input_exhausted(exec::Side::kLeft) ||
                       !exchange_->input_exhausted(exec::Side::kRight);
    *stream_ended = true;
    stream_done_ = true;
    UpdateMemoryAccounting();
    return Status::OK();
  }
  Status control = ControlPoint();
  if (!control.ok()) {
    // A failed catch-up broadcast leaves shard probe states mixed —
    // never degradable (see ApplyTransition).
    AbandonStagedIngest();
    pump_error_ =
        control.WithContext("epoch=" + std::to_string(epoch_));
    return pump_error_;
  }
  if (exact_only_ && state_ != ProcessorState::kLexRex) {
    // Soft-deadline clamp: enter the cheapest exact state before any
    // step of this epoch runs (RunControlLoop keeps it pinned there).
    Assessment forced;
    forced.step = exchange_->steps();
    Status clamped = ApplyTransition(ProcessorState::kLexRex, forced,
                                     Decision::kDeadlineClamp);
    if (!clamped.ok()) {
      AbandonStagedIngest();
      pump_error_ =
          clamped.WithContext("epoch=" + std::to_string(epoch_));
      return pump_error_;
    }
  }
  uint64_t routed = 0;
  if (ingest_inflight_) {
    // Swap point: the epoch's route was staged by the ingest task
    // during the previous epoch. Wait for it, then commit the staged
    // tier — counters publish, shard staged rows become the pending
    // epoch — at exactly the point the serial path would have routed,
    // so every observer (governor, Progress, trace) sees identical
    // state either way.
    Status ingest = WaitIngest();
    if (!ingest.ok()) {
      return HandleIngestFault(std::move(ingest), stream_ended);
    }
    const uint64_t budget = std::max<uint64_t>(1, StepsToNextControlPoint());
    if (staged_budget_ != budget) {
      // The budget prediction is exact by construction; a mismatch
      // means the staged epoch is not the epoch the control loop just
      // shaped, and committing it would silently fork the trace.
      return HandleIngestFault(
          Status::Internal(
              "pipelined ingest staged a " +
              std::to_string(staged_budget_) + "-step epoch but the "
              "control point requires " + std::to_string(budget)),
          stream_ended);
    }
    route_.clear();
    route_.swap(staged_route_);
    exchange_->CommitStaged(shard_ptrs_);
    routed = route_.size();
    ++ingest_stats_.epochs_staged;
  } else {
    const uint64_t budget = std::max<uint64_t>(1, StepsToNextControlPoint());
    route_.clear();
    const auto route_start = std::chrono::steady_clock::now();
    auto serial_routed = exchange_->RouteEpoch(budget, shard_ptrs_, &route_);
    ingest_stats_.serial_route_ns += ElapsedNs(route_start);
    ++ingest_stats_.epochs_routed_serially;
    if (!serial_routed.ok()) {
      // Mid-epoch routing failure: rows of the aborted epoch are
      // already scattered into the shards' pending batches, and the
      // exchange's scheduler position cannot be rewound. The epoch is
      // abandoned either way; on_fault decides between the sticky
      // error and a degraded partial-result finalization.
      return HandleEpochFault(serial_routed.status(), /*shard=*/-1,
                              stream_ended);
    }
    routed = *serial_routed;
  }
  if (routed == 0) {
    *stream_ended = true;
    stream_done_ = true;
    UpdateMemoryAccounting();
    return Status::OK();
  }
  for (JoinShard* shard : shard_ptrs_) shard->BeginEpoch();
  // With the pending tier now swapped into the epoch tier, the staged
  // tier is free: start routing the next epoch while this one's
  // phases execute.
  MaybeSubmitIngest();

  // Phase A: per-shard step loops over their partitions.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (JoinShard* shard : shard_ptrs_) {
    tasks.push_back([shard] { shard->RunBuildPhase(); });
  }
  int32_t failed_task = -1;
  Status phase = RunTasks(std::move(tasks), &failed_task);
  if (!phase.ok()) {
    // A shard died mid-ingest. Its store may hold a prefix of the
    // epoch's rows, but no ref or flag references them — output and
    // global state come only from *merged* epochs — so the completed
    // prefix is intact and degradable.
    return HandleEpochFault(std::move(phase), failed_task, stream_ended);
  }

  // Phase B: cross-shard approximate probes (only when some input
  // probes approximately; exact matches are intra-shard by radix
  // construction).
  const bool any_approx =
      LeftMode(state_) == join::ProbeMode::kApproximate ||
      RightMode(state_) == join::ProbeMode::kApproximate;
  if (any_approx && shards_.size() > 1) {
    tasks.clear();
    for (JoinShard* shard : shard_ptrs_) {
      auto* all = &shard_ptrs_;
      tasks.push_back([shard, all] { shard->RunCrossProbePhase(*all); });
    }
    failed_task = -1;
    phase = RunTasks(std::move(tasks), &failed_task);
    if (!phase.ok()) {
      return HandleEpochFault(std::move(phase), failed_task, stream_ended);
    }
  }

  // Coordinator merge-entry fault site: fires before the merge mutates
  // any global state, so it aborts the epoch like a phase fault.
  auto merge_entry = []() -> Status {
    AQP_FAILPOINT(fail::site::kExchangeMerge);
    return Status::OK();
  };
  Status merge_site = merge_entry();
  if (!merge_site.ok()) {
    return HandleEpochFault(std::move(merge_site), /*shard=*/-1,
                            stream_ended);
  }

  Status merged = MergeEpoch();
  if (!merged.ok()) {
    // A broken merge invariant means global state (flags, monitor) may
    // already be partially updated; no epoch may run after it and the
    // fault is never degradable.
    pump_error_ =
        merged.WithContext("epoch=" + std::to_string(epoch_));
    return pump_error_;
  }
  ++epoch_;
  // The merged epoch's route is spent: drop it now so a fault at the
  // *next* control point (a failed budget charge) cannot mistake its
  // already-published, already-merged rows for an aborted epoch and
  // roll them back.
  route_.clear();
  return Status::OK();
}

Status ParallelAdaptiveJoin::HandleEpochFault(Status error, int32_t shard,
                                              bool* stream_ended) {
  // A phase/merge-entry fault can arrive with the *next* epoch's
  // ingest still in flight; drain it and drop the staged tier first,
  // so the cursor counters rewind to the published ones before the
  // rollback below adjusts both past the faulted epoch.
  AbandonStagedIngest();
  // Abandon the epoch: discard rows still pending in the shards (a
  // routing fault scattered them without BeginEpoch) and roll the
  // exchange's counters back to the last completed epoch, so progress,
  // completeness, and ordinal bookkeeping all describe exactly the
  // epochs whose output was merged. The scheduler position cannot be
  // rewound, so no epoch may ever be routed again — either terminal
  // path below guarantees that.
  for (JoinShard* s : shard_ptrs_) s->DiscardPending();
  uint64_t aborted_rows[2] = {0, 0};
  for (const RouteEntry& entry : route_) {
    ++aborted_rows[static_cast<size_t>(entry.side)];
  }
  exchange_->RollbackCounts(route_.size(), aborted_rows[0], aborted_rows[1]);
  route_.clear();

  Status annotated = error.WithContext(
      "epoch=" + std::to_string(epoch_) +
      (shard >= 0 ? "/shard=" + std::to_string(shard) : ""));
  if (options_.on_fault == FaultPolicy::kFinalizePartial &&
      RecoverableFaultCode(error)) {
    // Graceful degradation: the fault becomes a hard-deadline-style
    // early finalization. Buffered output (a strict prefix of the
    // fault-free run) stays deliverable; the FaultReport says what was
    // tolerated and where.
    FaultReport report;
    report.site = ExtractFaultSite(error);
    report.epoch = epoch_;
    report.step = exchange_->steps();
    report.shard = shard;
    report.status = std::move(annotated);
    fault_ = std::move(report);
    finalized_early_ = true;
    stream_done_ = true;
    *stream_ended = true;
    UpdateMemoryAccounting();
    return Status::OK();
  }
  pump_error_ = std::move(annotated);
  return pump_error_;
}

uint64_t ParallelAdaptiveJoin::PredictNextEpochBudget() const {
  // Evaluated right after epoch e committed (published steps == steps
  // through e). The next pump runs ControlPoint() on exactly these
  // counters before computing its budget; simulate the control-point
  // update on local copies so the staged epoch's length matches what
  // that pump will demand. Nothing between here and there moves
  // script_position_ / last_assessment_step_ — both change only at
  // control points.
  const adaptive::AdaptiveOptions& adaptive = options_.base.adaptive;
  const uint64_t steps = exchange_->steps();
  switch (adaptive.policy) {
    case AdaptivePolicy::kPinned:
      return options_.unbounded_epoch_steps;
    case AdaptivePolicy::kScripted: {
      size_t position = script_position_;
      while (position < adaptive.script.size() &&
             adaptive.script[position].at_step <= steps) {
        ++position;
      }
      if (position >= adaptive.script.size()) {
        return options_.unbounded_epoch_steps;
      }
      const uint64_t at = adaptive.script[position].at_step;
      return std::max<uint64_t>(1, at > steps ? at - steps : 1);
    }
    case AdaptivePolicy::kAdaptive: {
      uint64_t last = last_assessment_step_;
      if (steps > 0 && steps - last >= adaptive.delta_adapt) {
        last = steps;
      }
      const uint64_t boundary = last + adaptive.delta_adapt;
      return std::max<uint64_t>(1, boundary > steps ? boundary - steps : 1);
    }
  }
  return options_.unbounded_epoch_steps;
}

void ParallelAdaptiveJoin::MaybeSubmitIngest() {
  if (!options_.pipeline_ingest || active_pool_ == nullptr) return;
  if (ingest_inflight_) return;
  if (finalize_requested_ || stream_done_) return;
  if (exchange_->input_exhausted(exec::Side::kLeft) &&
      exchange_->input_exhausted(exec::Side::kRight)) {
    // The epoch just committed drained both inputs; there is nothing
    // left to stage (the next pump's serial RouteEpoch routes zero
    // steps and ends the stream).
    return;
  }
  staged_route_.clear();
  staged_budget_ = PredictNextEpochBudget();
  ingest_status_ = Status::OK();
  std::vector<std::function<void()>> tasks;
  tasks.push_back([this] {
    // Ingest task body: pulls source batches through the exchange and
    // routes them into the staged tier. Touches only cursor counters
    // and staged buffers — nothing a phase worker or the coordinator
    // reads before the swap-point Wait().
    const auto stage_start = std::chrono::steady_clock::now();
    auto staged =
        exchange_->StageEpoch(staged_budget_, shard_ptrs_, &staged_route_);
    ingest_stats_.overlap_route_ns += ElapsedNs(stage_start);
    ingest_status_ = staged.ok() ? Status::OK() : staged.status();
    if (coord_node_ != nullptr) {
      // Publish this task's tier sizes so the coordinator's next
      // control-point charge can account the ingest side without
      // touching buffers this task owns.
      ingest_side_bytes_.store(IngestSideMemoryUsage(),
                               std::memory_order_relaxed);
    }
  });
  ingest_handle_ = active_pool_->Submit(std::move(tasks));
  ingest_inflight_ = true;
}

Status ParallelAdaptiveJoin::WaitIngest() {
  const auto wait_start = std::chrono::steady_clock::now();
  Status group = ingest_handle_.Wait();
  ingest_stats_.stall_ns += ElapsedNs(wait_start);
  ingest_inflight_ = false;
  ingest_handle_ = TaskGroupHandle();
  // A thrown task (pool-level containment) outranks the staged status
  // it never got to write.
  if (!group.ok()) return group;
  return ingest_status_;
}

void ParallelAdaptiveJoin::AbandonStagedIngest() {
  if (ingest_inflight_) {
    // The staging error, if any, is deliberately swallowed: a terminal
    // path is discarding the staged epoch, and the serial engine would
    // never have routed (or faulted on) that input at all.
    (void)ingest_handle_.Wait();
    ingest_inflight_ = false;
    ingest_handle_ = TaskGroupHandle();
  }
  if (exchange_ != nullptr) {
    exchange_->DiscardStaged(shard_ptrs_);
  }
  staged_route_.clear();
}

Status ParallelAdaptiveJoin::RefreshMemoryAccounting() {
  // Injected charge failure: a backing allocator refusing the
  // accounting charge. Degrades through HandleEpochFault like any
  // recoverable control-point fault.
  AQP_FAILPOINT(fail::site::kBudgetCharge);
  UpdateMemoryAccounting();
  return Status::OK();
}

void ParallelAdaptiveJoin::UpdateMemoryAccounting() {
  uint64_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Committed tiers only — the staged tier belongs to the ingest
    // task and is accounted through ingest_side_bytes_ while one is in
    // flight.
    const uint64_t bytes = shards_[i]->CommittedMemoryUsage();
    if (!shard_nodes_.empty()) shard_nodes_[i]->Refresh(bytes);
    total += bytes;
  }
  uint64_t coord = CoordinatorMemoryUsage();
  coord += ingest_inflight_
               ? ingest_side_bytes_.load(std::memory_order_relaxed)
               : IngestSideMemoryUsage();
  if (coord_node_ != nullptr) coord_node_->Refresh(coord);
  total += coord;
  memory_bytes_ = total;
  if (total > peak_memory_bytes_) peak_memory_bytes_ = total;
}

uint64_t ParallelAdaptiveJoin::IngestSideMemoryUsage() const {
  uint64_t bytes = exchange_ != nullptr ? exchange_->ApproximateMemoryUsage()
                                        : 0;
  for (const auto& shard : shards_) bytes += shard->StagedMemoryUsage();
  bytes += staged_route_.capacity() * sizeof(RouteEntry);
  // Prefetching children buffer source batches on their own producer
  // threads; their deques are part of this query's footprint (the
  // consumer-side serving batches are owned by whichever context pulls
  // the exchange — the same one calling this).
  if (auto* prefetch = dynamic_cast<exec::PrefetchSource*>(left_)) {
    bytes += prefetch->ApproximateMemoryUsage();
  }
  if (auto* prefetch = dynamic_cast<exec::PrefetchSource*>(right_)) {
    bytes += prefetch->ApproximateMemoryUsage();
  }
  return bytes;
}

uint64_t ParallelAdaptiveJoin::CoordinatorMemoryUsage() const {
  uint64_t bytes = route_.capacity() * sizeof(RouteEntry);
  bytes += out_buffer_.capacity() * sizeof(ParallelMatchRef);
  bytes += merge_scratch_.capacity() * sizeof(MergedMatch);
  bytes += epoch_observables_.capacity() * sizeof(join::StepObservables);
  for (size_t s = 0; s < 2; ++s) {
    bytes += matched_exactly_[s].capacity() * sizeof(uint8_t);
    bytes += matched_any_[s].capacity() * sizeof(uint8_t);
  }
  return bytes;
}

uint64_t ParallelAdaptiveJoin::ApproximateMemoryUsage() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->CommittedMemoryUsage();
  return total + CoordinatorMemoryUsage() + IngestSideMemoryUsage();
}

Status ParallelAdaptiveJoin::HandleIngestFault(Status error,
                                               bool* stream_ended) {
  // The staged epoch was never committed: drop it (cursor counters
  // rewind to the published ones) — no pending rows to discard, no
  // rollback, because nothing this epoch touched is observable.
  exchange_->DiscardStaged(shard_ptrs_);
  staged_route_.clear();
  route_.clear();
  Status annotated =
      error.WithContext("epoch=" + std::to_string(epoch_));
  if (options_.on_fault == FaultPolicy::kFinalizePartial &&
      RecoverableFaultCode(error)) {
    // Same degradation as HandleEpochFault: the fault becomes a
    // hard-deadline-style early finalization with a strict-prefix
    // result; step/epoch describe the committed prefix.
    FaultReport report;
    report.site = ExtractFaultSite(error);
    report.epoch = epoch_;
    report.step = exchange_->steps();
    report.shard = -1;
    report.status = std::move(annotated);
    fault_ = std::move(report);
    finalized_early_ = true;
    stream_done_ = true;
    *stream_ended = true;
    UpdateMemoryAccounting();
    return Status::OK();
  }
  pump_error_ = std::move(annotated);
  return pump_error_;
}

Status ParallelAdaptiveJoin::RunTasks(std::vector<std::function<void()>> tasks,
                                      int32_t* failed_task) {
  if (failed_task != nullptr) *failed_task = -1;
  if (active_pool_ != nullptr) {
    // One task group per phase; Wait()-participation keeps the
    // coordinator an execution lane, shared pool or not. A throwing
    // task is contained by the pool as the group's sticky error.
    TaskGroupHandle handle = active_pool_->Submit(std::move(tasks));
    Status status = handle.Wait();
    if (!status.ok() && failed_task != nullptr) {
      *failed_task = static_cast<int32_t>(handle.error_task());
    }
    return status;
  }
  // Inline (single shard, no pool): contain exactly like a worker.
  for (size_t i = 0; i < tasks.size(); ++i) {
    Status status = Status::OK();
    try {
      AQP_FAILPOINT_THROW(fail::site::kPoolTask);
      tasks[i]();
    } catch (const fail::InjectedFault& fault) {
      status = fault.status();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      status = Status::Internal("task threw a non-std::exception object");
    }
    if (!status.ok()) {
      if (failed_task != nullptr) *failed_task = static_cast<int32_t>(i);
      return status;
    }
  }
  return Status::OK();
}

Status ParallelAdaptiveJoin::MergeEpoch() {
  const uint64_t epoch_start = exchange_->steps() - route_.size();
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), 0);
  std::fill(cross_cursor_.begin(), cross_cursor_.end(), 0);
  epoch_observables_.clear();
  epoch_observables_.reserve(route_.size());

  // Size the global flag bitsets for every tuple routed so far.
  for (size_t s = 0; s < 2; ++s) {
    const size_t count = exchange_->side_count(static_cast<exec::Side>(s));
    matched_exactly_[s].resize(count, 0);
    matched_any_[s].resize(count, 0);
  }

  for (size_t i = 0; i < route_.size(); ++i) {
    const uint64_t seq = epoch_start + i;
    const RouteEntry& entry = route_[i];
    JoinShard* shard = shard_ptrs_[entry.shard];
    const exec::Side read_side = entry.side;
    const exec::Side stored_side = exec::OtherSide(read_side);
    const size_t read_idx = static_cast<size_t>(read_side);
    const size_t stored_idx = static_cast<size_t>(stored_side);

    merge_scratch_.clear();

    // Intra-shard matches of this step (phase A). The shard must have
    // produced exactly one StepOutputs per routed row, in routing
    // order — a mismatch would silently misattribute matches to the
    // wrong global steps, so it is checked in every build type.
    if (merge_cursor_[entry.shard] >= shard->step_outputs().size()) {
      return Status::Internal(
          "parallel join merge: shard " + std::to_string(entry.shard) +
          " produced " + std::to_string(shard->step_outputs().size()) +
          " phase-A steps but the route expects more (global step " +
          std::to_string(seq) + ")");
    }
    const StepOutputs& step =
        shard->step_outputs()[merge_cursor_[entry.shard]++];
    if (step.seq != seq) {
      return Status::Internal(
          "parallel join merge: phase-A outputs out of order on shard " +
          std::to_string(entry.shard) + " (got step " +
          std::to_string(step.seq) + ", expected " + std::to_string(seq) +
          ")");
    }
    for (uint32_t m = step.begin; m < step.end; ++m) {
      const join::JoinMatch& match = shard->matches()[m];
      MergedMatch merged;
      merged.probe_side = read_side;
      merged.probe_ordinal = entry.ordinal;
      merged.stored_ordinal = shard->side_ordinal(stored_side, match.stored_id);
      merged.ref.similarity = match.similarity;
      merged.ref.kind = match.kind;
      if (read_side == exec::Side::kLeft) {
        merged.ref.left_shard = entry.shard;
        merged.ref.left_id = match.probe_id;
        merged.ref.right_shard = entry.shard;
        merged.ref.right_id = match.stored_id;
      } else {
        merged.ref.left_shard = entry.shard;
        merged.ref.left_id = match.stored_id;
        merged.ref.right_shard = entry.shard;
        merged.ref.right_id = match.probe_id;
      }
      merge_scratch_.push_back(merged);
    }

    // Cross-shard matches of this step (phase B), if any.
    const auto& cross_steps = shard->cross_step_outputs();
    size_t& cross_cursor = cross_cursor_[entry.shard];
    if (cross_cursor < cross_steps.size() &&
        cross_steps[cross_cursor].seq == seq) {
      const StepOutputs& cross = cross_steps[cross_cursor++];
      for (uint32_t m = cross.begin; m < cross.end; ++m) {
        const CrossMatch& cm = shard->cross_matches()[m];
        const JoinShard* stored_shard = shard_ptrs_[cm.stored_shard];
        MergedMatch merged;
        merged.probe_side = read_side;
        merged.probe_ordinal = entry.ordinal;
        merged.stored_ordinal =
            stored_shard->side_ordinal(stored_side, cm.match.stored_id);
        merged.ref.similarity = cm.match.similarity;
        merged.ref.kind = cm.match.kind;
        if (read_side == exec::Side::kLeft) {
          merged.ref.left_shard = entry.shard;
          merged.ref.left_id = cm.match.probe_id;
          merged.ref.right_shard = cm.stored_shard;
          merged.ref.right_id = cm.match.stored_id;
        } else {
          merged.ref.left_shard = cm.stored_shard;
          merged.ref.left_id = cm.match.stored_id;
          merged.ref.right_shard = entry.shard;
          merged.ref.right_id = cm.match.probe_id;
        }
        merge_scratch_.push_back(merged);
      }
    }

    // Deterministic shard merge order == single-threaded output order:
    // every probe appends its matches sorted by stored id, and stored
    // ids in the one-store engine are exactly the per-side ordinals.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergedMatch& a, const MergedMatch& b) {
                return a.stored_ordinal < b.stored_ordinal;
              });

    // Replay the step against the global flags, exactly as the
    // single-threaded core does: flag/counter updates for the whole
    // step first, attribution afterwards (§3.3 snapshots the flags at
    // the end of the step).
    for (const MergedMatch& merged : merge_scratch_) {
      if (merged.ref.kind == join::MatchKind::kExact) {
        matched_exactly_[read_idx][merged.probe_ordinal] = 1;
        matched_exactly_[stored_idx][merged.stored_ordinal] = 1;
        ++exact_pairs_;
      } else {
        ++approximate_pairs_;
      }
      if (!matched_any_[read_idx][merged.probe_ordinal]) {
        matched_any_[read_idx][merged.probe_ordinal] = 1;
        ++matched_any_count_[read_idx];
      }
      if (!matched_any_[stored_idx][merged.stored_ordinal]) {
        matched_any_[stored_idx][merged.stored_ordinal] = 1;
        ++matched_any_count_[stored_idx];
      }
      ++pairs_emitted_;
      out_buffer_.push_back(merged.ref);
    }

    join::StepObservables obs;
    for (const MergedMatch& merged : merge_scratch_) {
      if (merged.ref.kind != join::MatchKind::kApproximate) continue;
      if (matched_exactly_[stored_idx][merged.stored_ordinal]) {
        ++obs.approx_attributed[read_idx];
      } else if (matched_exactly_[read_idx][merged.probe_ordinal]) {
        ++obs.approx_attributed[stored_idx];
      } else {
        ++obs.approx_attributed[read_idx];
        ++obs.approx_attributed[stored_idx];
      }
    }
    epoch_observables_.push_back(obs);
  }

  cost_.AddSteps(state_, route_.size());
  monitor_->OnBatch(epoch_observables_, state_);
  return Status::OK();
}

Status ParallelAdaptiveJoin::EnsureOutput(bool* have_output) {
  while (out_pos_ >= out_buffer_.size()) {
    // Fully drained: recycle the buffer before the next epoch fills it.
    out_buffer_.clear();
    out_pos_ = 0;
    ++buffer_generation_;
    if (stream_done_) {
      *have_output = false;
      return Status::OK();
    }
    bool stream_ended = false;
    AQP_RETURN_IF_ERROR(PumpEpoch(&stream_ended));
    if (stream_ended) {
      *have_output = false;
      return Status::OK();
    }
  }
  *have_output = true;
  return Status::OK();
}

storage::Tuple ParallelAdaptiveJoin::MaterializeRow(
    const ParallelMatchRef& ref) const {
  const storage::TupleStore& l =
      shards_[ref.left_shard]->core().store(exec::Side::kLeft);
  const storage::TupleStore& r =
      shards_[ref.right_shard]->core().store(exec::Side::kRight);
  std::vector<storage::Value> values;
  const bool with_sim = options_.base.join.emit_similarity;
  values.reserve(l.num_columns() + r.num_columns() + (with_sim ? 1 : 0));
  l.AppendValuesTo(ref.left_id, &values);
  r.AppendValuesTo(ref.right_id, &values);
  if (with_sim) {
    values.emplace_back(ref.similarity);
  }
  return storage::Tuple(std::move(values));
}

void ParallelAdaptiveJoin::MaterializeRefInto(
    const ParallelMatchRef& ref, storage::ColumnBatch* out) const {
  shards_[ref.left_shard]->core().store(exec::Side::kLeft).AppendCellsTo(
      ref.left_id, out, 0);
  shards_[ref.right_shard]->core().store(exec::Side::kRight).AppendCellsTo(
      ref.right_id, out, left_width_);
  if (options_.base.join.emit_similarity) {
    out->AppendDouble(output_schema_.num_fields() - 1, ref.similarity);
  }
  out->CommitRow();
}

Status ParallelAdaptiveJoin::NextMatchRefs(size_t max_refs,
                                           std::vector<ParallelMatchRef>* out) {
  if (!open_) return Status::FailedPrecondition(name() + " not open");
  out->clear();
  if (max_refs == 0) max_refs = 1;
  while (out->size() < max_refs) {
    bool have_output = false;
    AQP_RETURN_IF_ERROR(EnsureOutput(&have_output));
    if (!have_output) break;
    const size_t take = std::min(max_refs - out->size(),
                                 out_buffer_.size() - out_pos_);
    out->insert(out->end(), out_buffer_.begin() + out_pos_,
                out_buffer_.begin() + out_pos_ + take);
    out_pos_ += take;
  }
  return Status::OK();
}

Result<std::optional<storage::Tuple>> ParallelAdaptiveJoin::Next() {
  if (!open_) return Status::FailedPrecondition(name() + " not open");
  bool have_output = false;
  AQP_RETURN_IF_ERROR(EnsureOutput(&have_output));
  if (!have_output) return std::optional<storage::Tuple>();
  return std::optional<storage::Tuple>(
      MaterializeRow(out_buffer_[out_pos_++]));
}

template <typename Batch>
Status ParallelAdaptiveJoin::FillBatch(Batch* out) {
  if (!open_) return Status::FailedPrecondition(name() + " not open");
  out->Reset(&output_schema_);
  // On error the partial batch is discarded per the Operator contract;
  // rewinding the cursor keeps the discarded refs deliverable instead
  // of silently consumed. Valid only while the buffer they came from
  // is still the live one (recycling bumps the generation).
  const size_t entry_pos = out_pos_;
  const uint64_t entry_generation = buffer_generation_;
  while (!out->full()) {
    bool have_output = false;
    Status status = EnsureOutput(&have_output);
    if (!status.ok()) {
      if (buffer_generation_ == entry_generation) {
        out_pos_ = entry_pos;
      }
      out->Clear();
      return status;
    }
    if (!have_output) break;
    EmitRef(out_buffer_[out_pos_++], out);
  }
  return Status::OK();
}

Status ParallelAdaptiveJoin::NextColumnBatch(storage::ColumnBatch* out) {
  return FillBatch(out);
}

Status ParallelAdaptiveJoin::NextBatch(storage::TupleBatch* out) {
  return FillBatch(out);
}

Result<size_t> ParallelAdaptiveJoin::AdvanceUnmaterialized(size_t max_rows) {
  if (!open_) return Status::FailedPrecondition(name() + " not open");
  if (max_rows == 0) max_rows = 1;
  bool have_output = false;
  AQP_RETURN_IF_ERROR(EnsureOutput(&have_output));
  if (!have_output) return size_t{0};
  const size_t take = std::min(max_rows, out_buffer_.size() - out_pos_);
  out_pos_ += take;
  return take;
}

}  // namespace parallel
}  // namespace exec
}  // namespace aqp
