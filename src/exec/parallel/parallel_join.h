#ifndef AQP_EXEC_PARALLEL_PARALLEL_JOIN_H_
#define AQP_EXEC_PARALLEL_PARALLEL_JOIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <atomic>

#include "adaptive/adaptive_join.h"
#include "adaptive/cost_model.h"
#include "adaptive/mar.h"
#include "adaptive/state.h"
#include "adaptive/trace.h"
#include "common/memory_budget.h"
#include "exec/operator.h"
#include "exec/parallel/exchange.h"
#include "exec/parallel/shard.h"
#include "exec/parallel/thread_pool.h"

namespace aqp {
namespace exec {
namespace parallel {

/// \brief What an epoch governor tells the coordinator to do at a
/// control point (see ParallelJoinOptions::governor).
enum class EpochDirective {
  /// Run the epoch normally.
  kProceed,
  /// Soft-deadline response: force the processor into the cheapest
  /// exact state (lex/rex) and pin it there — the MAR loop keeps
  /// assessing, but may no longer choose approximate states. Sticky.
  kForceExactOnly,
  /// Hard-deadline response: stop consuming input. Output already
  /// produced stays deliverable; the stream then ends, reporting the
  /// partial result (the paper's time knob — completeness is whatever
  /// Completeness() says it is at that point).
  kFinalize,
  /// Abandon the query: the coordinator returns Status::Cancelled
  /// without routing another step and stays in that sticky error
  /// state. Buffered output is not delivered.
  kCancel,
};

/// \brief Progress snapshot handed to the epoch governor.
struct EpochView {
  uint64_t steps = 0;
  uint64_t pairs_emitted = 0;
  adaptive::ProcessorState state = adaptive::ProcessorState::kLexRex;
  /// Engine memory footprint as refreshed at this control point; 0
  /// when the join carries no budget node (accounting off).
  uint64_t memory_bytes = 0;
};

/// \brief Result-completeness snapshot (the paper's time-completeness
/// trade-off, measured): how much of the statistically expected result
/// the run has actually produced.
struct CompletenessStats {
  /// Expected matched children under the completeness model at the
  /// current progress point.
  double expected_matches = 0.0;
  /// Observed statistic (distinct matched children, or emitted pairs
  /// under use_pairs_statistic).
  uint64_t observed_matches = 0;
  /// observed / expected, clamped to [0, 1]; 1 when nothing was
  /// expected.
  double ratio = 1.0;
  /// Structurally malformed input rows skipped by quarantining sources
  /// (CsvSourceOptions::max_bad_rows) — input the result never saw,
  /// reported alongside the completeness ratio.
  uint64_t quarantined_rows = 0;
};

/// \brief What the engine does with a *recoverable* mid-query fault —
/// a source/routing error or a shard phase failure at an epoch
/// boundary, where every completed epoch's output is intact and
/// deliverable. Unrecoverable faults (mid-merge invariant violations,
/// partially broadcast state transitions, cancellation) always fail
/// regardless of this policy.
enum class FaultPolicy {
  /// Surface the error: the operator enters its sticky failed state
  /// (the pre-existing behavior).
  kFail,
  /// Graceful degradation: treat the fault like a hard deadline — stop
  /// consuming input, deliver the strict-prefix partial result already
  /// produced, and report CompletenessStats plus a FaultReport. The
  /// paper's time-completeness trade, with "fault" as the time knob.
  kFinalizePartial,
};

/// \brief Where and when a tolerated fault happened; attached to a
/// degraded partial result (ParallelAdaptiveJoin::fault, QueryStats).
struct FaultReport {
  /// Failpoint site name when the error carries a "site=…" breadcrumb
  /// (injected faults always do); empty otherwise.
  std::string site;
  /// Completed epochs before the fault (the result is exactly their
  /// merged output).
  uint64_t epoch = 0;
  /// Global step count at the fault, after the aborted epoch's steps
  /// were rolled back.
  uint64_t step = 0;
  /// Faulting shard for phase A/B failures; -1 when the fault is not
  /// shard-attributable (source/routing/merge-entry faults).
  int32_t shard = -1;
  /// The underlying error.
  Status status;
};

/// Process-wide default of ParallelJoinOptions::pipeline_ingest: true,
/// unless the AQP_PIPELINE_INGEST environment variable is set to
/// 0/off/false/no (the CI serial-fallback ctest flavor). Read once.
bool DefaultPipelineIngest();

/// \brief Ingest-overlap counters: how much source parse + routing
/// cost the pipelined ingest moved off the epoch critical path.
///
/// Written by the coordinator at epoch barriers (and by the ingest
/// task between them); read them only when the operator is quiescent —
/// between drive calls, or after the stream ended.
struct IngestStats {
  /// Epochs whose route was staged ahead by the ingest task.
  uint64_t epochs_staged = 0;
  /// Epochs routed serially on the critical path (the first epoch,
  /// and every epoch when pipeline_ingest is off).
  uint64_t epochs_routed_serially = 0;
  /// Coordinator wall time blocked at swap points waiting for (or
  /// helping finish) an in-flight ingest task. On a saturated pool
  /// this approaches overlap_route_ns — no spare lane, no real
  /// overlap (the 1-CPU bench caveat).
  int64_t stall_ns = 0;
  /// Staging wall time (source refills + routing) spent on the ingest
  /// task, i.e. attributed to overlap rather than the critical path.
  int64_t overlap_route_ns = 0;
  /// Serial routing wall time on the critical path.
  int64_t serial_route_ns = 0;
};

/// \brief Configuration of the partition-parallel adaptive join.
struct ParallelJoinOptions {
  /// Join spec, interleaving, MAR thresholds, weights — exactly the
  /// single-threaded operator's knobs; the parallel engine is a
  /// drop-in with identical semantics.
  adaptive::AdaptiveJoinOptions base;
  /// Shard (worker) count. 0 = hardware concurrency.
  size_t num_shards = 0;
  /// Epoch length in steps when no control point bounds it (pinned
  /// policy, or a scripted policy past its last entry). Only
  /// throughput-relevant: results and traces do not depend on it.
  uint64_t unbounded_epoch_steps = 4096;
  /// Shared worker pool (borrowed, e.g. a LinkageService's; must
  /// outlive the operator). Null = the operator creates its own
  /// (num_shards - 1)-worker pool at Open. Pool choice never changes
  /// results or traces — epochs are barrier-synchronized either way.
  ThreadPool* shared_pool = nullptr;
  /// Called by the coordinator at every epoch control point (all
  /// shards quiescent), *before* the MAR control loop runs. This is
  /// where per-query deadline budgets plug into the adaptation cycle:
  /// a service returns kForceExactOnly past a soft deadline, kFinalize
  /// past a hard one, kCancel on teardown. Null = always proceed
  /// (byte-identical to the governor-less engine).
  std::function<EpochDirective(const EpochView&)> governor;
  /// Recoverable-fault policy (see FaultPolicy). kFail preserves the
  /// sticky-error behavior.
  FaultPolicy on_fault = FaultPolicy::kFail;
  /// Bounded retry of transient (kUnavailable) source refills during
  /// ingest; absorbed retries surface via source_retries().
  SourceRetryOptions source_retry;
  /// Overlap ingest with execution: while epoch e's phases run, an
  /// ingest task group pulls source batches and routes epoch e+1 into
  /// a staged buffer tier, committed at the next epoch barrier.
  /// Results and adaptation traces are byte-identical either way
  /// (tests/integration/pipeline_parity_test.cc); the toggle exists to
  /// keep the refactor bisectable and to let CI drive the retained
  /// serial path. Default on (see DefaultPipelineIngest).
  bool pipeline_ingest = DefaultPipelineIngest();
  /// Per-query budget node of the hierarchical accounting tree
  /// (borrowed; must outlive the join). When set, the join creates one
  /// child node per shard plus a coordinator node under it at Open and
  /// refreshes them at every epoch control point, so the governor (and
  /// the node's ancestors, up to a service-global root) observe the
  /// engine's footprint while it runs. Null = no accounting, no
  /// refresh work — byte-identical behavior AND identical hot-path
  /// cost to the pre-budget engine.
  mem::BudgetNode* memory_budget = nullptr;
};

/// \brief One late-materialized output match of the parallel join:
/// the pair's tuples addressed by (shard, shard-local id).
struct ParallelMatchRef {
  uint32_t left_shard = 0;
  uint32_t right_shard = 0;
  storage::TupleId left_id = 0;
  storage::TupleId right_id = 0;
  double similarity = 1.0;
  join::MatchKind kind = join::MatchKind::kExact;
};

/// \brief Partition-parallel symmetric join with a globally
/// coordinated MAR loop.
///
/// A radix exchange replays the single-threaded input schedule and
/// routes each tuple by join-key hash to one of N shards, each owning
/// its own TupleStore / ExactIndex / QGramIndex (inside a
/// HybridJoinCore). Execution is epoch-synchronized: one epoch spans
/// the steps to the next MAR control point (δ_adapt in adaptive mode),
/// and runs as
///
///   control point  →  route epoch  →  phase A (parallel: per-shard
///   step loops)  →  phase B (parallel: cross-shard approximate
///   probes, sequence-gated)  →  merge (serial: global observation
///   stream)  →  next control point
///
/// Adaptation stays *global*: the coordinator merges every shard's
/// per-step matches back into global step order, replays the §3.3
/// attribution against coordinator-owned matched-exactly flags, feeds
/// one global Monitor, and runs Assess/Respond once per epoch. A
/// chosen transition is broadcast to all shards, each catching up its
/// own lagging structures, before any shard executes a step of the
/// next epoch — the paper's safe-state-transfer guarantee, since every
/// shard is quiescent at the barrier.
///
/// Equivalence contract (tests/integration/parallel_parity_test.cc):
/// for any shard count, the output row *sequence* and the adaptation
/// trace are byte-identical to the single-threaded AdaptiveJoin. Exact
/// matches are intra-shard by construction (equal keys hash equally);
/// approximate cross-shard matches are recovered by phase B with the
/// same prefix visibility as a single index; and the merge emits each
/// step's matches sorted by the stored tuple's global ordinal — the
/// deterministic shard merge order, which equals the single-threaded
/// probes' ascending-stored-id output order.
///
/// Three drive modes are supported, all producing identical streams:
/// row protocol (Next/NextBatch, materialized at delivery), match-ref
/// protocol (NextMatchRefs + MaterializeRow), and the counting drain
/// (AdvanceUnmaterialized; never builds a row).
class ParallelAdaptiveJoin : public exec::Operator,
                             public exec::UnmaterializedCounter {
 public:
  /// Children are borrowed, not owned, and must outlive the join.
  ParallelAdaptiveJoin(exec::Operator* left, exec::Operator* right,
                       ParallelJoinOptions options);
  ~ParallelAdaptiveJoin() override;

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status NextBatch(storage::TupleBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override {
    return output_schema_;
  }
  /// Quiescent iff no produced-but-undelivered match refs remain
  /// buffered (every routed tuple is fully joined at epoch barriers).
  bool quiescent() const override { return out_pos_ >= out_buffer_.size(); }
  std::string name() const override { return "ParallelAdaptiveJoin"; }

  /// \name Match-ref drive mode.
  /// @{
  /// Appends up to `max_refs` output refs to `*out` (cleared first).
  /// An empty result after an OK return signals end-of-stream.
  Status NextMatchRefs(size_t max_refs, std::vector<ParallelMatchRef>* out);

  /// Concatenates the stored tuples of `ref` (left fields, right
  /// fields, optional similarity column).
  storage::Tuple MaterializeRow(const ParallelMatchRef& ref) const;

  /// Columnar materialization of one ref: writes the output cells
  /// straight from the shard stores' columns into `out` (no row
  /// payload constructed).
  void MaterializeRefInto(const ParallelMatchRef& ref,
                          storage::ColumnBatch* out) const;
  /// @}

  /// exec::UnmaterializedCounter.
  Result<size_t> AdvanceUnmaterialized(size_t max_rows) override;

  /// \name Deadline controls (also reachable via options().governor).
  /// @{
  /// Forces the processor into lex/rex at the next epoch boundary and
  /// pins it there (soft-deadline semantics; sticky).
  void ForceExactOnly() { exact_only_ = true; }
  /// Stops consuming input at the next epoch boundary: buffered output
  /// is still delivered, then the stream ends (hard-deadline
  /// semantics; sticky).
  void FinalizeEarly() { finalize_requested_ = true; }
  /// True iff the stream was ended by FinalizeEarly / kFinalize while
  /// input remained.
  bool finalized_early() const { return finalized_early_; }
  /// True once no further input will be consumed (exhausted or
  /// finalized). Buffered output may still be undelivered.
  bool stream_done() const { return stream_done_; }
  /// Completeness of the result produced so far, under the configured
  /// completeness model — the number a deadline-expired query reports
  /// alongside its partial result.
  CompletenessStats Completeness() const;
  /// The tolerated fault that ended the stream early; engaged only
  /// when on_fault == kFinalizePartial caught a recoverable fault.
  const std::optional<FaultReport>& fault() const { return fault_; }
  /// Transient source refill failures retried away during ingest.
  uint64_t source_retries() const {
    return exchange_ ? exchange_->source_retries() : 0;
  }
  /// Ingest-overlap counters (see IngestStats for the read contract).
  const IngestStats& ingest_stats() const { return ingest_stats_; }
  /// Epochs routed, executed, and merged to completion.
  uint64_t epochs_completed() const { return epoch_; }
  /// @}

  /// \name Run introspection (valid during and after execution).
  /// @{
  adaptive::ProcessorState state() const { return state_; }
  const adaptive::CostAccountant& cost() const { return cost_; }
  const adaptive::Monitor& monitor() const { return *monitor_; }
  const adaptive::AdaptationTrace& trace() const { return trace_; }
  uint64_t steps() const { return exchange_ ? exchange_->steps() : 0; }
  uint64_t pairs_emitted() const { return pairs_emitted_; }
  uint64_t exact_pairs() const { return exact_pairs_; }
  uint64_t approximate_pairs() const { return approximate_pairs_; }
  /// Distinct tuples of `side` matched at least once (global, i.e.
  /// including cross-shard matches the shard cores cannot see).
  uint64_t distinct_matched(exec::Side side) const {
    return matched_any_count_[static_cast<size_t>(side)];
  }
  size_t num_shards() const { return shards_.size(); }
  const JoinShard& shard(size_t i) const { return *shards_[i]; }
  const ParallelJoinOptions& options() const { return options_; }

  /// Engine memory footprint right now: shard committed+staged tiers,
  /// exchange refill batches, prefetching children, and coordinator
  /// buffers. Call only when quiescent (between drive calls with no
  /// ingest task in flight, or after the stream ended) — the
  /// per-control-point refresh uses the race-free split internally.
  uint64_t ApproximateMemoryUsage() const;
  /// Footprint as of the last control-point refresh (0 before any).
  uint64_t memory_bytes() const { return memory_bytes_; }
  /// High-water of the refreshed footprint across the run. A final
  /// snapshot is folded in when the stream ends, so with accounting
  /// off (memory_budget null) this is simply the end-of-run footprint.
  uint64_t peak_memory_bytes() const { return peak_memory_bytes_; }
  /// @}

 private:
  /// One merged match during the per-step merge, with global per-side
  /// ordinals alongside the (shard, local id) address.
  struct MergedMatch {
    ParallelMatchRef ref;
    exec::Side probe_side = exec::Side::kLeft;
    uint32_t probe_ordinal = 0;
    uint32_t stored_ordinal = 0;
  };

  /// Per-batch-type ref emission (the only difference between the two
  /// delivery protocols).
  void EmitRef(const ParallelMatchRef& ref,
               storage::ColumnBatch* out) const {
    MaterializeRefInto(ref, out);
  }
  void EmitRef(const ParallelMatchRef& ref,
               storage::TupleBatch* out) const {
    out->Append(MaterializeRow(ref));
  }

  /// Shared drive loop of NextColumnBatch/NextBatch: emits buffered
  /// refs until the batch is full or the stream ends. On error the
  /// partial batch is discarded and the output cursor rewound (valid
  /// within one buffer generation), keeping the consumed refs
  /// deliverable.
  template <typename Batch>
  Status FillBatch(Batch* out);

  /// Runs one epoch (control point, route-or-swap, phases, merge).
  /// Sets `*stream_ended` when no step could be routed. With
  /// pipeline_ingest on, the epoch's route was usually staged by an
  /// ingest task during the previous epoch; the swap point waits for
  /// that task, commits the staged tier, and submits staging of the
  /// *next* epoch before the phases run.
  Status PumpEpoch(bool* stream_ended);

  /// \name Pipelined ingest (all coordinator-side).
  /// @{
  /// Submits a one-task ingest group that stages the next epoch
  /// (predicted budget) into the exchange/shard staged tiers. No-op
  /// when pipelining is off, no pool exists, the stream is ending, or
  /// both inputs are already exhausted.
  void MaybeSubmitIngest();
  /// Waits for the in-flight ingest task (stall time accounted) and
  /// returns its outcome: the task-group error if it threw, else the
  /// StageEpoch status.
  Status WaitIngest();
  /// What the next pump's StepsToNextControlPoint() will return —
  /// evaluated one epoch early by simulating the control-point updates
  /// on (published) committed counters. Exact, not a heuristic: the
  /// swap point re-derives the truth and Internal-errors on mismatch.
  uint64_t PredictNextEpochBudget() const;
  /// Drains any in-flight ingest task and discards the staged tier
  /// (terminal paths: finalize, cancel, faults, Close, destruction).
  /// A staging error is swallowed — the serial engine would never
  /// have routed that epoch.
  void AbandonStagedIngest();
  /// Ingest-task fault at the swap point: the staged (never
  /// committed) epoch is discarded, then the fault degrades or goes
  /// sticky exactly like HandleEpochFault — same FaultReport shape,
  /// no rollback needed because nothing was published.
  Status HandleIngestFault(Status error, bool* stream_ended);
  /// @}

  /// Refills the output buffer by pumping epochs until output exists
  /// or the stream ends.
  Status EnsureOutput(bool* have_output);

  /// \name Memory accounting (tentpole PR 9).
  /// @{
  /// Control-point refresh: recomputes the engine footprint (race-free
  /// against an in-flight ingest task via the committed/ingest-side
  /// split), pushes it into the budget nodes, and updates
  /// memory_bytes_/peak_memory_bytes_. Evaluates the `budget.charge`
  /// failpoint first; a non-OK charge is returned for the caller to
  /// degrade through HandleEpochFault. Only called when a budget node
  /// is attached.
  Status RefreshMemoryAccounting();
  /// Sum of the tiers owned by the ingest/staging context: exchange
  /// refill batches, shard staged tiers, the staged route, and
  /// prefetching children. Called by the ingest task after staging
  /// (published via ingest_side_bytes_), or by the coordinator when no
  /// task is in flight.
  uint64_t IngestSideMemoryUsage() const;
  /// Coordinator-owned buffers (route, merge scratch, output buffer,
  /// matched flags) — always safe from the coordinator.
  uint64_t CoordinatorMemoryUsage() const;
  /// The refresh body without the failpoint: recompute, push into the
  /// budget nodes (if any), update memory_bytes_ and the peak. Also
  /// called directly on stream-end paths (no ingest task is in flight
  /// there), so the final footprint is always folded into the peak —
  /// including with accounting off, which is what fixes the
  /// parallel-runs-report-no-memory RunStats bug.
  void UpdateMemoryAccounting();
  /// @}

  /// Mirrors AdaptiveJoin::OnQuiescentPoint. An error (failed
  /// catch-up broadcast) leaves shard states inconsistent and is never
  /// degradable.
  Status ControlPoint();
  /// Mirrors AdaptiveJoin::RunControlLoop on the global aggregates.
  Status RunControlLoop();
  /// Steps until the next control point bounds the epoch.
  uint64_t StepsToNextControlPoint() const;
  /// Broadcasts `next` to all shards (parallel per-shard catch-up) and
  /// records costs and the trace entry.
  Status ApplyTransition(adaptive::ProcessorState next,
                         const adaptive::Assessment& assessment, int phi);
  /// Abandons the epoch whose route is in `route_` (pending rows
  /// discarded, exchange counters rolled back to the last completed
  /// epoch), then either degrades — on_fault == kFinalizePartial and
  /// `error` is recoverable: record a FaultReport, end the stream as a
  /// finalized partial result, return OK with `*stream_ended` set — or
  /// makes `error` the sticky pump error. `shard` attributes phase
  /// faults (-1 otherwise).
  Status HandleEpochFault(Status error, int32_t shard, bool* stream_ended);
  /// Serial coordinator merge of one routed epoch: global observation
  /// stream, matched-flag replay, monitor feed, output append. Errors
  /// only on broken phase invariants (misordered shard outputs).
  Status MergeEpoch();
  /// Aggregates the global JoinProgress snapshot the completeness
  /// model consumes (shared by RunControlLoop and Completeness).
  stats::JoinProgress Progress() const;
  /// Runs one task batch on the pool (coordinator participates), or
  /// inline when single-sharded; either way a throwing task is
  /// contained and returned as the group's first error. When
  /// `failed_task` is non-null it receives the failing task's index
  /// (-1 if none) — phase callers pass one task per shard, so the
  /// index names the faulting shard.
  Status RunTasks(std::vector<std::function<void()>> tasks,
                  int32_t* failed_task = nullptr);

  exec::Operator* left_;
  exec::Operator* right_;
  ParallelJoinOptions options_;
  storage::Schema output_schema_;
  /// Left input arity (output column offset of the right fields).
  size_t left_width_ = 0;

  std::vector<std::unique_ptr<JoinShard>> shards_;
  std::vector<JoinShard*> shard_ptrs_;
  std::unique_ptr<RadixExchange> exchange_;
  /// Owned pool when no shared_pool was injected.
  std::unique_ptr<ThreadPool> pool_;
  /// The pool phase task groups actually run on: options_.shared_pool,
  /// else pool_.get(), else null (single shard runs inline).
  ThreadPool* active_pool_ = nullptr;

  /// Global MAR state (the coordinator is the only writer).
  std::unique_ptr<adaptive::Monitor> monitor_;
  std::unique_ptr<adaptive::Assessor> assessor_;
  std::unique_ptr<adaptive::Responder> responder_;
  adaptive::CostAccountant cost_;
  adaptive::AdaptationTrace trace_;
  adaptive::ProcessorState state_;
  uint64_t last_assessment_step_ = 0;
  size_t script_position_ = 0;

  /// Coordinator-owned global matched flags, indexed by per-side
  /// ordinal: shard-core flags only see intra-shard matches, so the
  /// §3.3 attribution and the distinct-matched statistic live here.
  std::vector<uint8_t> matched_exactly_[2];
  std::vector<uint8_t> matched_any_[2];
  uint64_t matched_any_count_[2] = {0, 0};
  uint64_t pairs_emitted_ = 0;
  uint64_t exact_pairs_ = 0;
  uint64_t approximate_pairs_ = 0;

  /// Budget-tree children under options_.memory_budget (empty when
  /// accounting is off): one node per shard plus one coordinator node
  /// (exchange + ingest-side + coordinator buffers). Destroyed before
  /// the borrowed parent, auto-releasing their usage.
  std::vector<std::unique_ptr<mem::BudgetNode>> shard_nodes_;
  std::unique_ptr<mem::BudgetNode> coord_node_;
  uint64_t memory_bytes_ = 0;
  uint64_t peak_memory_bytes_ = 0;
  /// Ingest-side footprint published by the staging task after each
  /// StageEpoch (relaxed; read by the coordinator's refresh while the
  /// task is in flight, exact values re-read after the barrier).
  std::atomic<uint64_t> ingest_side_bytes_{0};

  /// Pipelined-ingest state. The ingest task writes staged_route_,
  /// ingest_status_, and the overlap counter; the coordinator touches
  /// them only after TaskGroupHandle::Wait() (the pool's barrier).
  std::vector<RouteEntry> staged_route_;
  uint64_t staged_budget_ = 0;
  Status ingest_status_;
  TaskGroupHandle ingest_handle_;
  bool ingest_inflight_ = false;
  IngestStats ingest_stats_;

  /// Current epoch's route, per-shard merge cursors, and scratch.
  std::vector<RouteEntry> route_;
  std::vector<size_t> merge_cursor_;
  std::vector<size_t> cross_cursor_;
  std::vector<MergedMatch> merge_scratch_;
  std::vector<join::StepObservables> epoch_observables_;

  /// Produced-but-undelivered output refs, in global order.
  std::vector<ParallelMatchRef> out_buffer_;
  size_t out_pos_ = 0;
  /// Bumped whenever out_buffer_ is recycled (NextBatch's error-path
  /// cursor rewind is only valid within one buffer generation).
  uint64_t buffer_generation_ = 0;

  bool open_ = false;
  bool stream_done_ = false;
  /// Deadline state (see ForceExactOnly / FinalizeEarly).
  bool exact_only_ = false;
  bool finalize_requested_ = false;
  bool finalized_early_ = false;
  /// Epochs merged to completion (FaultReport::epoch).
  uint64_t epoch_ = 0;
  /// The tolerated fault that degraded this run, if any.
  std::optional<FaultReport> fault_;
  /// Sticky failure: a mid-epoch routing or merge error leaves the
  /// exchange's scheduler position unrecoverable, so the operator
  /// hard-fails every subsequent pump with the original status instead
  /// of double-ingesting a retried epoch.
  Status pump_error_;
};

}  // namespace parallel
}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_PARALLEL_PARALLEL_JOIN_H_
