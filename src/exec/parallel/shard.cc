#include "exec/parallel/shard.h"

#include <utility>

namespace aqp {
namespace exec {
namespace parallel {

using adaptive::LeftMode;
using adaptive::RightMode;

JoinShard::JoinShard(uint32_t index, const join::JoinSpec& spec,
                     const join::ApproxProbeOptions& approx_options,
                     adaptive::ProcessorState initial_state)
    : index_(index),
      spec_(spec),
      approx_options_(approx_options),
      core_(spec, approx_options) {
  // Empty stores: entering the initial state catches up nothing.
  core_.SetProbeMode(exec::Side::kLeft, LeftMode(initial_state));
  core_.SetProbeMode(exec::Side::kRight, RightMode(initial_state));
}

void JoinShard::Route(RoutedTuple tuple, uint32_t side_ordinal) {
  const size_t s = static_cast<size_t>(tuple.side);
  assert(tuple.local_id == seq_[s].size() &&
         "routing order must match store append order");
  seq_[s].push_back(tuple.seq);
  ordinal_[s].push_back(side_ordinal);
  pending_input_.push_back(std::move(tuple));
}

void JoinShard::BeginEpoch() {
  epoch_input_.clear();
  std::swap(epoch_input_, pending_input_);
  step_outputs_.clear();
  matches_.clear();
  cross_step_outputs_.clear();
  cross_matches_.clear();
}

void JoinShard::RunBuildPhase() {
  for (RoutedTuple& routed : epoch_input_) {
    StepOutputs step;
    step.seq = routed.seq;
    step.begin = static_cast<uint32_t>(matches_.size());
    core_.ProcessRoutedTupleInto(routed.side, std::move(routed.tuple),
                                 routed.key_hash, &matches_);
    step.end = static_cast<uint32_t>(matches_.size());
    step_outputs_.push_back(step);
  }
}

void JoinShard::RunCrossProbePhase(const std::vector<JoinShard*>& shards) {
  if (shards.size() <= 1) return;
  for (const RoutedTuple& routed : epoch_input_) {
    if (core_.probe_mode(routed.side) != join::ProbeMode::kApproximate) {
      continue;
    }
    const exec::Side stored_side = exec::OtherSide(routed.side);
    const size_t stored_idx = static_cast<size_t>(stored_side);
    const storage::TupleStore& own_store = core_.store(routed.side);
    const text::GramSet& probe_grams = own_store.Grams(routed.local_id);
    // Gram-less probes match by string equality only — equal strings
    // share a hash and therefore a shard, so no cross-shard work.
    if (probe_grams.empty()) continue;
    const std::string_view probe_key = own_store.JoinKey(routed.local_id);

    StepOutputs step;
    step.seq = routed.seq;
    step.begin = static_cast<uint32_t>(cross_matches_.size());
    for (JoinShard* other : shards) {
      if (other == this) continue;
      cross_tmp_.clear();
      join::ProbeApproximateInto(
          other->core_.qgram_index(stored_side),
          other->core_.store(stored_side), probe_key, probe_grams, spec_,
          routed.side, routed.local_id, approx_options_, &cross_scratch_,
          &cross_stats_, &cross_tmp_);
      for (const join::JoinMatch& m : cross_tmp_) {
        // Sequence gate: the single-threaded join would only have
        // indexed tuples that arrived before this probe's step.
        if (other->seq_[stored_idx][m.stored_id] >= routed.seq) continue;
        cross_matches_.push_back(CrossMatch{m, other->index_});
      }
    }
    step.end = static_cast<uint32_t>(cross_matches_.size());
    if (step.end != step.begin) {
      cross_step_outputs_.push_back(step);
    }
  }
}

std::pair<uint64_t, uint64_t> JoinShard::ApplyState(
    adaptive::ProcessorState state) {
  const uint64_t left =
      core_.SetProbeMode(exec::Side::kLeft, LeftMode(state));
  const uint64_t right =
      core_.SetProbeMode(exec::Side::kRight, RightMode(state));
  return {left, right};
}

}  // namespace parallel
}  // namespace exec
}  // namespace aqp
