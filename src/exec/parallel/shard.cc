#include "exec/parallel/shard.h"

#include <utility>

#include "common/failpoint.h"

namespace aqp {
namespace exec {
namespace parallel {

using adaptive::LeftMode;
using adaptive::RightMode;

JoinShard::JoinShard(uint32_t index, const join::JoinSpec& spec,
                     const join::ApproxProbeOptions& approx_options,
                     adaptive::ProcessorState initial_state)
    : index_(index),
      spec_(spec),
      approx_options_(approx_options),
      core_(spec, approx_options) {
  // Empty stores: entering the initial state catches up nothing.
  core_.SetProbeMode(exec::Side::kLeft, LeftMode(initial_state));
  core_.SetProbeMode(exec::Side::kRight, RightMode(initial_state));
}

void JoinShard::BindSchemas(const storage::Schema* left,
                            const storage::Schema* right) {
  pending_rows_[0].Reset(left);
  pending_rows_[1].Reset(right);
  epoch_rows_[0].Reset(left);
  epoch_rows_[1].Reset(right);
  staged_rows_[0].Reset(left);
  staged_rows_[1].Reset(right);
}

void JoinShard::RouteRow(exec::Side side, const storage::ColumnBatch& src,
                         size_t src_row, uint64_t seq,
                         uint32_t side_ordinal) {
  const size_t s = static_cast<size_t>(side);
  RoutedRow meta;
  meta.side = side;
  meta.local_id = static_cast<storage::TupleId>(seq_[s].size());
  meta.row = static_cast<uint32_t>(pending_rows_[s].size());
  meta.seq = seq;
  seq_[s].push_back(seq);
  ordinal_[s].push_back(side_ordinal);
  // Column scatter: the row's slices (and its key-lane hash) land in
  // the shard's pending batch; no Tuple object is ever constructed.
  pending_rows_[s].AppendRowFrom(src, src_row);
  pending_meta_.push_back(meta);
}

void JoinShard::StageRow(exec::Side side, const storage::ColumnBatch& src,
                         size_t src_row, uint64_t seq,
                         uint32_t side_ordinal) {
  const size_t s = static_cast<size_t>(side);
  RoutedRow meta;
  meta.side = side;
  // The id this row will hold once the staged tier commits behind
  // everything already routed.
  meta.local_id =
      static_cast<storage::TupleId>(seq_[s].size() + staged_seq_[s].size());
  meta.row = static_cast<uint32_t>(staged_rows_[s].size());
  meta.seq = seq;
  staged_seq_[s].push_back(seq);
  staged_ordinal_[s].push_back(side_ordinal);
  staged_rows_[s].AppendRowFrom(src, src_row);
  staged_meta_.push_back(meta);
}

void JoinShard::CommitStaged() {
  // The previous epoch must have begun (pending tier empty), so the
  // staged batches can swap straight in with zero copies.
  assert(pending_meta_.empty());
  for (size_t s = 0; s < 2; ++s) {
    seq_[s].insert(seq_[s].end(), staged_seq_[s].begin(),
                   staged_seq_[s].end());
    ordinal_[s].insert(ordinal_[s].end(), staged_ordinal_[s].begin(),
                       staged_ordinal_[s].end());
    staged_seq_[s].clear();
    staged_ordinal_[s].clear();
    std::swap(pending_rows_[s], staged_rows_[s]);
    staged_rows_[s].Clear();
  }
  std::swap(pending_meta_, staged_meta_);
  staged_meta_.clear();
}

void JoinShard::DiscardStaged() {
  for (size_t s = 0; s < 2; ++s) {
    staged_seq_[s].clear();
    staged_ordinal_[s].clear();
    staged_rows_[s].Clear();
  }
  staged_meta_.clear();
}

void JoinShard::DiscardPending() {
  size_t dropped[2] = {0, 0};
  for (const RoutedRow& routed : pending_meta_) {
    ++dropped[static_cast<size_t>(routed.side)];
  }
  for (size_t s = 0; s < 2; ++s) {
    // Routed ids are assigned densely at RouteRow, so the pending rows
    // of a side are exactly the trailing entries of its maps.
    seq_[s].resize(seq_[s].size() - dropped[s]);
    ordinal_[s].resize(ordinal_[s].size() - dropped[s]);
    pending_rows_[s].Clear();
  }
  pending_meta_.clear();
}

void JoinShard::BeginEpoch() {
  for (size_t s = 0; s < 2; ++s) {
    std::swap(epoch_rows_[s], pending_rows_[s]);
    pending_rows_[s].Clear();
  }
  epoch_meta_.clear();
  std::swap(epoch_meta_, pending_meta_);
  step_outputs_.clear();
  matches_.clear();
  cross_step_outputs_.clear();
  cross_matches_.clear();
}

void JoinShard::RunBuildPhase() {
  // Worker-thread context: a fired fault throws and is contained by
  // the thread pool as the task group's sticky error.
  AQP_FAILPOINT_THROW(fail::site::kShardPhaseA);
  for (const RoutedRow& routed : epoch_meta_) {
    StepOutputs step;
    step.seq = routed.seq;
    step.begin = static_cast<uint32_t>(matches_.size());
    core_.ProcessRowInto(routed.side,
                         epoch_rows_[static_cast<size_t>(routed.side)],
                         routed.row, &matches_);
    step.end = static_cast<uint32_t>(matches_.size());
    step_outputs_.push_back(step);
  }
}

void JoinShard::RunCrossProbePhase(const std::vector<JoinShard*>& shards) {
  if (shards.size() <= 1) return;
  AQP_FAILPOINT_THROW(fail::site::kShardPhaseB);
  for (const RoutedRow& routed : epoch_meta_) {
    if (core_.probe_mode(routed.side) != join::ProbeMode::kApproximate) {
      continue;
    }
    const exec::Side stored_side = exec::OtherSide(routed.side);
    const size_t stored_idx = static_cast<size_t>(stored_side);
    const storage::TupleStore& own_store = core_.store(routed.side);
    const text::GramSet& probe_grams = own_store.Grams(routed.local_id);
    // Gram-less probes match by string equality only — equal strings
    // share a hash and therefore a shard, so no cross-shard work.
    if (probe_grams.empty()) continue;
    const std::string_view probe_key = own_store.JoinKey(routed.local_id);

    StepOutputs step;
    step.seq = routed.seq;
    step.begin = static_cast<uint32_t>(cross_matches_.size());
    for (JoinShard* other : shards) {
      if (other == this) continue;
      cross_tmp_.clear();
      join::ProbeApproximateInto(
          other->core_.qgram_index(stored_side),
          other->core_.store(stored_side), probe_key, probe_grams, spec_,
          routed.side, routed.local_id, approx_options_, &cross_scratch_,
          &cross_stats_, &cross_tmp_);
      for (const join::JoinMatch& m : cross_tmp_) {
        // Sequence gate: the single-threaded join would only have
        // indexed tuples that arrived before this probe's step.
        if (other->seq_[stored_idx][m.stored_id] >= routed.seq) continue;
        cross_matches_.push_back(CrossMatch{m, other->index_});
      }
    }
    step.end = static_cast<uint32_t>(cross_matches_.size());
    if (step.end != step.begin) {
      cross_step_outputs_.push_back(step);
    }
  }
}

uint64_t JoinShard::CommittedMemoryUsage() const {
  uint64_t bytes = core_.ApproximateMemoryUsage();
  for (size_t s = 0; s < 2; ++s) {
    bytes += pending_rows_[s].ApproximateMemoryUsage();
    bytes += epoch_rows_[s].ApproximateMemoryUsage();
    bytes += seq_[s].capacity() * sizeof(uint64_t);
    bytes += ordinal_[s].capacity() * sizeof(uint32_t);
  }
  bytes += pending_meta_.capacity() * sizeof(RoutedRow);
  bytes += epoch_meta_.capacity() * sizeof(RoutedRow);
  bytes += step_outputs_.capacity() * sizeof(StepOutputs);
  bytes += matches_.capacity() * sizeof(join::JoinMatch);
  bytes += cross_step_outputs_.capacity() * sizeof(StepOutputs);
  bytes += cross_matches_.capacity() * sizeof(CrossMatch);
  bytes += cross_tmp_.capacity() * sizeof(join::JoinMatch);
  return bytes;
}

uint64_t JoinShard::StagedMemoryUsage() const {
  uint64_t bytes = staged_meta_.capacity() * sizeof(RoutedRow);
  for (size_t s = 0; s < 2; ++s) {
    bytes += staged_rows_[s].ApproximateMemoryUsage();
    bytes += staged_seq_[s].capacity() * sizeof(uint64_t);
    bytes += staged_ordinal_[s].capacity() * sizeof(uint32_t);
  }
  return bytes;
}

std::pair<uint64_t, uint64_t> JoinShard::ApplyState(
    adaptive::ProcessorState state) {
  const uint64_t left =
      core_.SetProbeMode(exec::Side::kLeft, LeftMode(state));
  const uint64_t right =
      core_.SetProbeMode(exec::Side::kRight, RightMode(state));
  return {left, right};
}

}  // namespace parallel
}  // namespace exec
}  // namespace aqp
