#ifndef AQP_EXEC_PARALLEL_EXCHANGE_H_
#define AQP_EXEC_PARALLEL_EXCHANGE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "exec/interleave.h"
#include "exec/operator.h"
#include "exec/parallel/shard.h"
#include "join/join_types.h"

namespace aqp {
namespace exec {
namespace parallel {

/// \brief Bounded retry of transient source failures during ingest.
///
/// A refill that fails with StatusCode::kUnavailable (a flaky remote
/// source, a transient read error) is re-attempted up to `max_retries`
/// times with deterministic exponential backoff before the error is
/// surfaced; any other code fails immediately. Retries are counted
/// (RadixExchange::source_retries) and surfaced in run/query stats.
struct SourceRetryOptions {
  /// Re-attempts per failed refill. 0 disables retrying.
  size_t max_retries = 0;
  /// Attempt k (1-based) sleeps base * 2^(k-1) before retrying; zero
  /// base never sleeps (deterministic tests).
  std::chrono::milliseconds backoff_base{0};
};

/// \brief One routed step of an epoch, in global step order. The
/// tuple's global sequence is implicit: epoch start + position.
struct RouteEntry {
  uint32_t shard = 0;
  exec::Side side = exec::Side::kLeft;
  /// Per-side global ordinal (the id the tuple would have received in
  /// the single-threaded engine's store — the key of the coordinator's
  /// matched-flag bitsets).
  uint32_t ordinal = 0;
  /// Shard-local store id.
  storage::TupleId local_id = 0;
};

/// \brief The radix exchange: replays the single-threaded engine's
/// input schedule and routes each row to a shard by join-key hash.
///
/// Determinism is the whole point. The exchange pulls columnar batches
/// from the two children through the same InterleaveScheduler and the
/// same buffered refill protocol as SymmetricJoin::PullNextInput, so
/// the global step sequence — which side was read at step t, and when
/// end-of-stream was discovered — is identical to the single-threaded
/// run. The shard of a row is a pure function of its join key (mixed
/// FNV-1a hash modulo shard count), which is what makes every exact
/// match intra-shard. Routing *scatters column slices*: each row's
/// cells are appended to the target shard's per-side pending
/// ColumnBatch, together with the key hash from the batch's hash lane
/// (computed once per refill, cached by the shard's TupleStore, never
/// re-hashed) — no Tuple object moves through the exchange.
class RadixExchange {
 public:
  /// Children are borrowed and must outlive the exchange. `spec`
  /// supplies the per-side join-key columns.
  RadixExchange(exec::Operator* left, exec::Operator* right,
                const join::JoinSpec& spec, exec::InterleavePolicy policy,
                uint64_t left_hint, uint64_t right_hint, size_t batch_size,
                size_t num_shards, SourceRetryOptions retry = {});

  /// Resets the read state (called from the operator's Open; the
  /// children themselves are opened by the caller).
  void Reset();

  /// Routes up to `max_steps` rows into the shards' pending batches,
  /// appending one RouteEntry per step to `*route` (not cleared).
  /// Returns the number of steps routed; fewer than `max_steps` only
  /// at end-of-stream. Counters publish immediately (serial ingest).
  Result<uint64_t> RouteEpoch(uint64_t max_steps,
                              const std::vector<JoinShard*>& shards,
                              std::vector<RouteEntry>* route);

  /// \name Route-ahead (pipelined ingest).
  ///
  /// The counters the rest of the engine observes — steps(),
  /// side_count(), input_exhausted() — are *published* state: they
  /// advance only when an epoch commits. The routing loop itself walks
  /// a private cursor, so an ingest task can stage the next epoch
  /// (StageEpoch, run concurrently with phase execution) without the
  /// governor, Progress(), or the adaptation trace observing rows the
  /// serial engine would not have routed yet. At the barrier swap the
  /// coordinator either CommitStaged (cursor becomes published, shard
  /// staged tiers commit) or DiscardStaged (cursor rewinds to
  /// published, shard staged tiers drop).
  /// @{
  /// Same routing loop as RouteEpoch, but scatters into the shards'
  /// *staged* tier and leaves published counters untouched. Runs on
  /// the ingest task; never concurrently with RouteEpoch or the
  /// commit/discard calls.
  Result<uint64_t> StageEpoch(uint64_t max_steps,
                              const std::vector<JoinShard*>& shards,
                              std::vector<RouteEntry>* route);

  /// Epoch-barrier swap: publishes the cursor counters and commits
  /// every shard's staged tier.
  void CommitStaged(const std::vector<JoinShard*>& shards);

  /// Drops a staged (never published) epoch: rewinds the cursor to
  /// the published counters and clears every shard's staged tier. The
  /// scheduler position is NOT rewound — as with RollbackCounts, the
  /// exchange is unusable for further routing afterwards.
  void DiscardStaged(const std::vector<JoinShard*>& shards);
  /// @}

  /// Global steps routed so far (published).
  uint64_t steps() const { return pub_steps_; }

  /// Rolls the step/side counters back past an aborted epoch's
  /// partially routed rows (the coordinator discards the shards'
  /// matching pending state). The scheduler position is NOT rewound —
  /// the exchange is unusable afterwards; callers must stop routing
  /// (the parallel join goes into a sticky error state).
  void RollbackCounts(uint64_t steps, uint64_t left_rows,
                      uint64_t right_rows) {
    steps_ -= steps;
    side_count_[0] -= left_rows;
    side_count_[1] -= right_rows;
    pub_steps_ -= steps;
    pub_side_count_[0] -= left_rows;
    pub_side_count_[1] -= right_rows;
  }

  /// Tuples routed so far from `side` (published).
  uint64_t side_count(exec::Side side) const {
    return pub_side_count_[static_cast<size_t>(side)];
  }

  /// True once `side`'s child reported end-of-stream (discovered at
  /// the same step index as the single-threaded engine would;
  /// published — EOS found while staging becomes visible at commit).
  bool input_exhausted(exec::Side side) const {
    return pub_done_[static_cast<size_t>(side)];
  }

  /// Transient refill failures retried away so far (see
  /// SourceRetryOptions).
  uint64_t source_retries() const { return source_retries_; }

  /// Allocated footprint of the exchange's own buffers: the two
  /// per-side refill batches (capacity-based, so recycled batches keep
  /// reporting their retained arenas). Must be called from whichever
  /// context owns the routing cursor — the ingest task while staging,
  /// the coordinator otherwise.
  uint64_t ApproximateMemoryUsage() const {
    return input_batch_[0].ApproximateMemoryUsage() +
           input_batch_[1].ApproximateMemoryUsage();
  }

 private:
  /// Mirrors SymmetricJoin::RefillInput, wrapped in the transient
  /// retry loop.
  Status Refill(exec::Side side);
  /// One refill attempt.
  Status RefillOnce(exec::Side side);
  /// The shared routing loop; `staged` selects the shard tier.
  Result<uint64_t> RouteLoop(uint64_t max_steps,
                             const std::vector<JoinShard*>& shards,
                             std::vector<RouteEntry>* route, bool staged);
  /// Cursor -> published.
  void Publish() {
    pub_steps_ = steps_;
    for (size_t i = 0; i < 2; ++i) {
      pub_side_count_[i] = side_count_[i];
      pub_done_[i] = done_[i];
    }
  }

  exec::Operator* inputs_[2];
  join::JoinSpec spec_;
  exec::InterleavePolicy policy_;
  uint64_t hints_[2];
  size_t batch_size_;
  size_t num_shards_;
  SourceRetryOptions retry_;
  uint64_t source_retries_ = 0;

  exec::InterleaveScheduler scheduler_;
  storage::ColumnBatch input_batch_[2];
  size_t input_pos_[2] = {0, 0};
  /// Routing cursor: advanced by the loop (serial route or staging).
  bool done_[2] = {false, false};
  uint64_t steps_ = 0;
  uint64_t side_count_[2] = {0, 0};
  /// Published at epoch commit; what accessors expose.
  bool pub_done_[2] = {false, false};
  uint64_t pub_steps_ = 0;
  uint64_t pub_side_count_[2] = {0, 0};
};

}  // namespace parallel
}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_PARALLEL_EXCHANGE_H_
