#ifndef AQP_EXEC_SINK_H_
#define AQP_EXEC_SINK_H_

#include <functional>

#include "exec/operator.h"

namespace aqp {
namespace exec {

/// \brief Per-tuple callback sink.
///
/// Drains an operator, invoking `visitor` for every tuple. The visitor
/// returns false to stop early (e.g. a time budget expired — the
/// "progressive" consumption mode the paper's mashup scenario implies).
struct DrainOptions {
  /// Stop after this many tuples (0 = unlimited).
  size_t limit = 0;
  /// Rows pulled per NextBatch() call. Deliberately smaller than the
  /// bulk-drain default: an early-stopping visitor discards at most
  /// batch_size - 1 already-produced tuples, so a modest batch bounds
  /// the overshoot of progressive consumption while still amortizing
  /// the per-call overhead.
  size_t batch_size = 64;
};

/// Drains `op` into `visitor`. Returns the number of tuples delivered.
Result<size_t> Drain(Operator* op,
                     const std::function<bool(const storage::Tuple&)>& visitor,
                     const DrainOptions& options = {});

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_SINK_H_
