#ifndef AQP_EXEC_CSV_IO_H_
#define AQP_EXEC_CSV_IO_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/operator.h"
#include "storage/schema.h"

namespace aqp {
namespace exec {

/// Tuning knobs for CsvSource's tolerance of malformed input.
struct CsvSourceOptions {
  /// Maximum number of malformed records to quarantine (skip and log)
  /// before the scan fails hard. 0 — the default — keeps the strict
  /// behavior: the first malformed record is an error. When positive,
  /// structurally recoverable bad records (wrong cell count, unparsable
  /// number, stray character after a quote) are skipped, counted, and
  /// logged; an unterminated quoted field is never recoverable because
  /// the record boundary itself is lost. Quarantining the
  /// (max_bad_rows + 1)-th record returns kResourceExhausted.
  size_t max_bad_rows = 0;
};

/// One skipped record from CsvSource's quarantine log.
struct QuarantinedRow {
  /// 1-based line number where the record began.
  size_t line = 0;
  /// The parse error that disqualified the record.
  std::string reason;
};

/// \brief Columnar CSV source: an operator that parses CSV text
/// straight into ColumnBatch column vectors — how real feeds enter the
/// engine without ever constructing row objects.
///
/// The scanner is incremental and RFC-4180-style (quotes honoured,
/// CRLF or LF line endings, bare \r is field content — matching
/// common/csv.h's ParseCsv): each NextColumnBatch call scans up to
/// `capacity()` records, writing unquoted string fields as views
/// copied text→arena, int64/double fields parsed into the typed
/// vectors, and empty non-string cells as NULL. The header row is
/// validated against the schema at Open, exactly as
/// storage::ReadRelationCsv does — but where ReadRelationCsv
/// materializes a row Relation, this source feeds the columnar
/// pipeline directly (e.g. as a join child).
///
/// Next() exists as the usual row-protocol compatibility adapter.
///
/// Malformed input is a hard error by default; with
/// CsvSourceOptions::max_bad_rows > 0 the scanner instead quarantines
/// up to that many bad records — each skipped record is counted and
/// logged with its line number and reason (see quarantine_log()), and
/// the scan resynchronizes at the next record boundary. Completeness
/// accounting upstream reads bad_rows() so a partial feed is reported,
/// never silent.
class CsvSource : public Operator {
 public:
  /// Parses `csv_text` (with a header row) as rows of `schema`.
  CsvSource(storage::Schema schema, std::string csv_text,
            CsvSourceOptions options = {});

  /// File convenience: reads the whole file at construction (no handle
  /// is retained afterwards).
  static Result<CsvSource> FromFile(storage::Schema schema,
                                    const std::string& path,
                                    CsvSourceOptions options = {});

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "CsvSource"; }

  /// 1-based line number of the next unparsed record (diagnostics).
  size_t line() const { return line_; }

  /// Number of malformed records quarantined so far this scan.
  size_t bad_rows() const { return quarantine_.size(); }

  /// Per-record log of what was quarantined and why.
  const std::vector<QuarantinedRow>& quarantine_log() const {
    return quarantine_;
  }

 private:
  /// Advances pos_ past blank lines (ParseCsv skips them; so do we).
  /// Returns true iff unconsumed input remains.
  bool SkipBlankLines();

  /// Scans one raw field at pos_. Unquoted content is a view into the
  /// text; quoted content is unescaped into scratch_ (the view then
  /// aliases scratch_, valid until the next scan). Sets *end_of_record
  /// when the field was terminated by a line ending or EOF.
  Status ScanField(std::string_view* field, bool* end_of_record);

  /// Parses one record's cells into `out` (no CommitRow on error).
  Status ScanRecordInto(storage::ColumnBatch* out);

  /// Advances pos_ past the rest of the current record (fields and
  /// quoted sections honoured) to the start of the next one. Fails only
  /// on an unterminated quoted field, where the record boundary is
  /// unknowable.
  Status SkipRecord();

  /// Scans one record into `out`, applying the quarantine policy:
  /// on a recoverable parse error with budget left, abandons the
  /// half-built row, logs the record, resyncs to the next record, and
  /// reports *committed = false with an OK status.
  Status ScanRecordQuarantining(storage::ColumnBatch* out, bool* committed);

  storage::Schema schema_;
  std::string text_;
  CsvSourceOptions options_;
  std::vector<QuarantinedRow> quarantine_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::string scratch_;
  std::string cell_scratch_;
  /// Single-row batch behind the Next() adapter.
  storage::ColumnBatch row_batch_;
  bool open_ = false;
};

/// Drains `op` (Open/NextColumnBatch*/Close) to `out` as CSV with a
/// header row of column names, writing each cell directly from the
/// output batches' columns — the CSV sink never materializes a row
/// payload. Doubles are written with shortest round-trip formatting
/// (CsvWriter::Field). Returns the number of data rows written.
Result<size_t> WriteOperatorCsv(Operator* op, std::ostream* out,
                                const ExecOptions& options = {});

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_CSV_IO_H_
