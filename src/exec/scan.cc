#include "exec/scan.h"

#include <algorithm>

#include "common/failpoint.h"

namespace aqp {
namespace exec {

Status RelationScan::Open() {
  if (open_) return Status::FailedPrecondition("RelationScan already open");
  open_ = true;
  position_ = 0;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> RelationScan::Next() {
  if (!open_) return Status::FailedPrecondition("RelationScan not open");
  if (position_ >= relation_->size()) {
    return std::optional<storage::Tuple>();
  }
  return std::optional<storage::Tuple>(relation_->row(position_++));
}

Status RelationScan::NextColumnBatch(storage::ColumnBatch* out) {
  if (!open_) return Status::FailedPrecondition("RelationScan not open");
  AQP_FAILPOINT(fail::site::kScanNext);
  out->Reset(&relation_->schema());
  const size_t end =
      std::min(relation_->size(), position_ + out->capacity());
  // Unchecked row access: position_ < end <= size() by construction,
  // and this copy feeds every join's input path. Cells go straight
  // into the column vectors — no Tuple/Value construction — with one
  // type dispatch per column for the whole range.
  const std::vector<storage::Tuple>& rows = relation_->rows();
  out->AppendTupleRows(rows.data() + position_, end - position_);
  position_ = end;
  return Status::OK();
}

Status RelationScan::NextBatch(storage::TupleBatch* out) {
  if (!open_) return Status::FailedPrecondition("RelationScan not open");
  out->Reset(&relation_->schema());
  const size_t end =
      std::min(relation_->size(), position_ + out->capacity());
  const std::vector<storage::Tuple>& rows = relation_->rows();
  for (; position_ < end; ++position_) {
    out->Append(rows[position_]);
  }
  return Status::OK();
}

Status RelationScan::Close() {
  if (!open_) return Status::FailedPrecondition("RelationScan not open");
  open_ = false;
  return Status::OK();
}

Status VectorScan::Open() {
  if (open_) return Status::FailedPrecondition("VectorScan already open");
  open_ = true;
  position_ = 0;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> VectorScan::Next() {
  if (!open_) return Status::FailedPrecondition("VectorScan not open");
  if (position_ >= tuples_.size()) {
    return std::optional<storage::Tuple>();
  }
  return std::optional<storage::Tuple>(tuples_[position_++]);
}

Status VectorScan::NextColumnBatch(storage::ColumnBatch* out) {
  if (!open_) return Status::FailedPrecondition("VectorScan not open");
  out->Reset(&schema_);
  const size_t end = std::min(tuples_.size(), position_ + out->capacity());
  // Cell copies, not tuple copies: the scan stays re-openable and the
  // batch owns plain bytes (column-major, like RelationScan).
  out->AppendTupleRows(tuples_.data() + position_, end - position_);
  position_ = end;
  return Status::OK();
}

Status VectorScan::NextBatch(storage::TupleBatch* out) {
  if (!open_) return Status::FailedPrecondition("VectorScan not open");
  out->Reset(&schema_);
  const size_t end = std::min(tuples_.size(), position_ + out->capacity());
  // Copies, not moves: the scan stays re-openable.
  for (; position_ < end; ++position_) {
    out->Append(tuples_[position_]);
  }
  return Status::OK();
}

Status VectorScan::Close() {
  if (!open_) return Status::FailedPrecondition("VectorScan not open");
  open_ = false;
  return Status::OK();
}

}  // namespace exec
}  // namespace aqp
