#include "exec/scan.h"

namespace aqp {
namespace exec {

Status RelationScan::Open() {
  if (open_) return Status::FailedPrecondition("RelationScan already open");
  open_ = true;
  position_ = 0;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> RelationScan::Next() {
  if (!open_) return Status::FailedPrecondition("RelationScan not open");
  if (position_ >= relation_->size()) {
    return std::optional<storage::Tuple>();
  }
  return std::optional<storage::Tuple>(relation_->row(position_++));
}

Status RelationScan::Close() {
  if (!open_) return Status::FailedPrecondition("RelationScan not open");
  open_ = false;
  return Status::OK();
}

Status VectorScan::Open() {
  if (open_) return Status::FailedPrecondition("VectorScan already open");
  open_ = true;
  position_ = 0;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> VectorScan::Next() {
  if (!open_) return Status::FailedPrecondition("VectorScan not open");
  if (position_ >= tuples_.size()) {
    return std::optional<storage::Tuple>();
  }
  return std::optional<storage::Tuple>(tuples_[position_++]);
}

Status VectorScan::Close() {
  if (!open_) return Status::FailedPrecondition("VectorScan not open");
  open_ = false;
  return Status::OK();
}

}  // namespace exec
}  // namespace aqp
