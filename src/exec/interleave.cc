#include "exec/interleave.h"

namespace aqp {
namespace exec {

const char* InterleavePolicyName(InterleavePolicy policy) {
  switch (policy) {
    case InterleavePolicy::kAlternate:
      return "alternate";
    case InterleavePolicy::kProportional:
      return "proportional";
    case InterleavePolicy::kLeftFirst:
      return "left_first";
    case InterleavePolicy::kRightFirst:
      return "right_first";
  }
  return "?";
}

InterleaveScheduler::InterleaveScheduler(InterleavePolicy policy,
                                         uint64_t left_hint,
                                         uint64_t right_hint)
    : policy_(policy), left_hint_(left_hint), right_hint_(right_hint) {}

Side InterleaveScheduler::Preferred() const {
  switch (policy_) {
    case InterleavePolicy::kAlternate:
      return OtherSide(last_);
    case InterleavePolicy::kProportional: {
      if (left_hint_ == 0 || right_hint_ == 0) return OtherSide(last_);
      // Pick the side that is furthest behind its proportional share.
      // Compare left_reads/left_hint vs right_reads/right_hint without
      // division.
      const unsigned __int128 lhs =
          static_cast<unsigned __int128>(left_reads_) * right_hint_;
      const unsigned __int128 rhs =
          static_cast<unsigned __int128>(right_reads_) * left_hint_;
      if (lhs == rhs) return OtherSide(last_);
      return lhs < rhs ? Side::kLeft : Side::kRight;
    }
    case InterleavePolicy::kLeftFirst:
      return Side::kLeft;
    case InterleavePolicy::kRightFirst:
      return Side::kRight;
  }
  return Side::kLeft;
}

std::optional<Side> InterleaveScheduler::NextSide(bool left_exhausted,
                                                  bool right_exhausted) {
  if (left_exhausted && right_exhausted) return std::nullopt;
  if (left_exhausted) return Side::kRight;
  if (right_exhausted) return Side::kLeft;
  return Preferred();
}

void InterleaveScheduler::OnRead(Side side) {
  last_ = side;
  if (side == Side::kLeft) {
    ++left_reads_;
  } else {
    ++right_reads_;
  }
}

}  // namespace exec
}  // namespace aqp
