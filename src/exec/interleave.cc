#include "exec/interleave.h"

namespace aqp {
namespace exec {

const char* InterleavePolicyName(InterleavePolicy policy) {
  switch (policy) {
    case InterleavePolicy::kAlternate:
      return "alternate";
    case InterleavePolicy::kProportional:
      return "proportional";
    case InterleavePolicy::kLeftFirst:
      return "left_first";
    case InterleavePolicy::kRightFirst:
      return "right_first";
  }
  return "?";
}

InterleaveScheduler::InterleaveScheduler(InterleavePolicy policy,
                                         uint64_t left_hint,
                                         uint64_t right_hint)
    : policy_(policy), left_hint_(left_hint), right_hint_(right_hint) {}

}  // namespace exec
}  // namespace aqp
