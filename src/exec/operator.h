#ifndef AQP_EXEC_OPERATOR_H_
#define AQP_EXEC_OPERATOR_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/column_batch.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "storage/tuple_batch.h"

namespace aqp {
namespace exec {

/// \brief Which input of a binary operator.
enum class Side { kLeft = 0, kRight = 1 };

/// The opposite input.
inline Side OtherSide(Side side) {
  return side == Side::kLeft ? Side::kRight : Side::kLeft;
}

/// "left" / "right".
const char* SideName(Side side);

/// \brief Pipelined iterator-model operator (OPEN/NEXT/CLOSE, Graefe),
/// with a vectorized batch protocol layered on top.
///
/// The adaptive framework (after Eurviriyanukul et al., cited as [11]
/// in the paper) replaces physical operators only at *quiescent*
/// states: states where the last input tuple consumed has been joined
/// with every match it has, so no partial per-tuple state would be lost
/// by a swap. Operators advertise this through `quiescent()`:
///
/// - `quiescent()` must be true right after Open() and after any Next()
///   call that left no outstanding matches pending;
/// - it must be false while matches for the current probe tuple are
///   still being enumerated one Next() at a time.
///
/// Next() returns an engaged optional with the next output tuple, an
/// empty optional at end-of-stream, or a non-OK status on error.
///
/// NextColumnBatch() is the native vectorized protocol: it refills a
/// caller-owned columnar ColumnBatch with up to `capacity()` rows per
/// call, amortizing the per-tuple virtual dispatch and Result/optional
/// packaging across the whole batch and moving *columns* (typed
/// vectors + a string arena) instead of rows of variants. Batch
/// boundaries are quiescent by construction — every tuple the operator
/// consumed to produce the batch has been fully processed, and all of
/// its output is materialized in the batch (or an internal spill
/// buffer), so adaptation may safely fire between batches. The default
/// implementation adapts Next(), which keeps every operator working
/// during the row → columnar migration; pipeline operators override it
/// natively.
///
/// NextBatch() — the row-of-Tuples protocol — survives only as a
/// compatibility adapter for tests and examples: its default pulls
/// Next() exactly as before, and the joins override it to materialize
/// rows from their late-materialized refs. Rows produced by either
/// protocol are byte-identical and in identical order.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator; must be called exactly once before Next().
  virtual Status Open() = 0;

  /// Produces the next output tuple, or nullopt at end-of-stream.
  virtual Result<std::optional<storage::Tuple>> Next() = 0;

  /// Refills `out` (cleared and schema-stamped first) with up to
  /// out->capacity() output rows in columnar form. An empty batch after
  /// an OK return signals end-of-stream. On error the partial batch is
  /// discarded and the error returned, exactly as a failing Next()
  /// would surface it.
  ///
  /// Base-class behavior adapts Next(); overriding operators must keep
  /// the same contract, including producing rows in the same order
  /// that repeated Next() calls would.
  virtual Status NextColumnBatch(storage::ColumnBatch* out);

  /// Row-protocol compatibility adapter (see class comment): refills
  /// `out` with up to out->capacity() output tuples, same order and
  /// end-of-stream convention as NextColumnBatch().
  virtual Status NextBatch(storage::TupleBatch* out);

  /// Releases resources; no Next() may follow.
  virtual Status Close() = 0;

  /// Schema of the tuples produced by Next().
  virtual const storage::Schema& output_schema() const = 0;

  /// True iff the operator is in a quiescent state (§2.1).
  virtual bool quiescent() const { return true; }

  /// Operator name for diagnostics ("SHJoin", "RelationScan", ...).
  virtual std::string name() const = 0;
};

/// \brief Scope guard pairing a successful child Open() with a Close()
/// on error exits.
///
/// A composite operator that opens several children must not leave the
/// already-opened ones open when a later child's Open() (or any later
/// validation) fails: the composite's own open_ flag stays false, so
/// its Close() refuses to run and the children leak their open state.
/// Construct one guard right after each successful child Open(); call
/// Dismiss() on all of them once the composite's Open() can no longer
/// fail. The Close() status is intentionally dropped — the triggering
/// error is the one the caller must see.
class OpenGuard {
 public:
  explicit OpenGuard(Operator* op) : op_(op) {}
  ~OpenGuard() {
    if (op_ != nullptr) (void)op_->Close();
  }
  OpenGuard(const OpenGuard&) = delete;
  OpenGuard& operator=(const OpenGuard&) = delete;

  /// Defuses the guard: the open succeeded end to end.
  void Dismiss() { op_ = nullptr; }

 private:
  Operator* op_;
};

/// \brief Optional capability of late-materializing operators: advance
/// execution and count output rows without constructing any row
/// payloads.
///
/// Operators whose output is naturally a set of *references* (e.g. the
/// symmetric join's match refs into its tuple stores) implement this
/// alongside Operator. Counting drains detect it via dynamic_cast and
/// skip row materialization entirely; the produced row count, the
/// production order, and all quiescent-point/adaptation behavior must
/// be identical to what NextBatch() would have driven.
class UnmaterializedCounter {
 public:
  virtual ~UnmaterializedCounter() = default;

  /// Produces and discards up to `max_rows` output rows, returning the
  /// number produced; 0 signals end-of-stream.
  virtual Result<size_t> AdvanceUnmaterialized(size_t max_rows) = 0;
};

/// \brief Knobs of the batched drain helpers.
struct ExecOptions {
  /// Rows pulled per NextColumnBatch() call.
  size_t batch_size = storage::ColumnBatch::kDefaultCapacity;
};

/// Drains `op` (Open/NextColumnBatch*/Close) into a materialized
/// relation. The pipeline moves columns; row payloads are constructed
/// exactly once, at this sink (late-materializing operators write
/// their stored columns into the batches, which are converted to rows
/// only because Relation is row-backed).
Result<storage::Relation> CollectAll(Operator* op,
                                     const ExecOptions& options = {});

/// Drains `op`, returning only the number of tuples produced. When the
/// operator is an UnmaterializedCounter, no output row is ever
/// materialized.
Result<size_t> CountAll(Operator* op, const ExecOptions& options = {});

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_OPERATOR_H_
