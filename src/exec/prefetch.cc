#include "exec/prefetch.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"

namespace aqp {
namespace exec {

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

PrefetchSource::PrefetchSource(Operator* child, PrefetchOptions options)
    : child_(child), options_(options) {
  options_.depth = std::max<size_t>(1, options_.depth);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
}

PrefetchSource::~PrefetchSource() { StopProducer(); }

Status PrefetchSource::Open() {
  if (open_) return Status::Internal("PrefetchSource: double Open");
  AQP_RETURN_IF_ERROR(child_->Open());
  OpenGuard child_guard(child_);
  current_ = storage::ColumnBatch();
  cursor_ = 0;
  eos_ = false;
  row_batch_ = storage::ColumnBatch();
  row_pos_ = 0;
  row_eos_ = false;
  {
    sync::MutexLock lock(&mu_);
    queue_.clear();
    stats_ = PrefetchStats();
    StartProducerLocked();
  }
  child_guard.Dismiss();
  open_ = true;
  return Status::OK();
}

Status PrefetchSource::Close() {
  if (!open_) return Status::Internal("PrefetchSource: Close before Open");
  StopProducer();
  {
    sync::MutexLock lock(&mu_);
    queue_.clear();
  }
  current_ = storage::ColumnBatch();
  cursor_ = 0;
  open_ = false;
  return child_->Close();
}

PrefetchStats PrefetchSource::stats() const {
  sync::MutexLock lock(&mu_);
  return stats_;
}

uint64_t PrefetchSource::ApproximateMemoryUsage() {
  uint64_t bytes = 0;
  {
    sync::MutexLock lock(&mu_);
    bytes += queue_.size() * sizeof(Chunk);
    for (const Chunk& chunk : queue_) {
      bytes += chunk.batch.ApproximateMemoryUsage();
    }
  }
  bytes += current_.ApproximateMemoryUsage();
  bytes += row_batch_.ApproximateMemoryUsage();
  return bytes;
}

void PrefetchSource::StartProducerLocked() {
  // The previous generation has exited (it cleared producer_running_
  // under mu_ on its way out); reclaim it before spawning.
  if (thread_.joinable()) thread_.join();
  producer_running_ = true;
  thread_ = std::thread(&PrefetchSource::ProducerLoop, this);
}

void PrefetchSource::StopProducer() {
  {
    sync::MutexLock lock(&mu_);
    stop_ = true;
    cv_space_.NotifyAll();
    cv_ready_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  {
    sync::MutexLock lock(&mu_);
    stop_ = false;
    producer_running_ = false;
  }
}

Status PrefetchSource::ProduceOne(storage::ColumnBatch* batch) {
  // Exceptions must not escape the producer thread; contain them to a
  // Status exactly as the thread pool does for phase tasks.
  try {
    AQP_FAILPOINT(fail::site::kIngestPrefetch);
    batch->Reset(&child_->output_schema(), options_.batch_size);
    Status status = child_->NextColumnBatch(batch);
    if (!status.ok()) batch->Clear();
    return status;
  } catch (const fail::InjectedFault& fault) {
    batch->Clear();
    return fault.status();
  } catch (const std::exception& e) {
    batch->Clear();
    return Status::Internal(std::string("prefetch refill threw: ") + e.what());
  }
}

void PrefetchSource::ProducerLoop() {
  for (;;) {
    {
      sync::MutexLock lock(&mu_);
      while (!stop_ && queue_.size() >= options_.depth) {
        cv_space_.Wait(mu_);
      }
      if (stop_) {
        producer_running_ = false;
        return;
      }
    }
    Chunk chunk;
    const auto refill_start = std::chrono::steady_clock::now();
    chunk.status = ProduceOne(&chunk.batch);
    const int64_t refill_ns = ElapsedNs(refill_start);
    const bool terminal = !chunk.status.ok() || chunk.batch.empty();
    {
      sync::MutexLock lock(&mu_);
      ++stats_.refills;
      stats_.producer_refill_ns += refill_ns;
      queue_.push_back(std::move(chunk));
      // Park after a terminal chunk: nothing past an error may be
      // pre-pulled (the consumer decides whether to retry), and
      // end-of-stream has nothing left to pull.
      if (terminal) producer_running_ = false;
      cv_ready_.NotifyOne();
    }
    if (terminal) return;
  }
}

Status PrefetchSource::NextColumnBatch(storage::ColumnBatch* out) {
  if (!open_) return Status::Internal("PrefetchSource: Next before Open");
  out->Reset(&child_->output_schema());
  if (cursor_ >= current_.size()) {
    if (eos_) return Status::OK();  // sticky end-of-stream
    Chunk chunk;
    {
      sync::MutexLock lock(&mu_);
      // Lazy restart after a surfaced error (non-sticky: upstream
      // transient-retry loops re-enter here). A parked-at-terminal
      // producer still has its chunk queued, so the restart condition
      // can only trigger once that chunk has been consumed.
      if (queue_.empty() && !producer_running_) StartProducerLocked();
      if (!queue_.empty()) {
        ++stats_.served_without_wait;
      } else {
        ++stats_.consumer_waits;
        const auto wait_start = std::chrono::steady_clock::now();
        while (queue_.empty()) {
          cv_ready_.Wait(mu_);
        }
        stats_.consumer_wait_ns += ElapsedNs(wait_start);
      }
      chunk = std::move(queue_.front());
      queue_.pop_front();
      cv_space_.NotifyOne();
    }
    if (!chunk.status.ok()) return chunk.status;  // no rows delivered
    if (chunk.batch.empty()) {
      eos_ = true;
      return Status::OK();
    }
    current_ = std::move(chunk.batch);
    cursor_ = 0;
  }
  // Serve from exactly one buffered batch per call: at least one row
  // (cursor_ < size), never more than the consumer's capacity. Errors
  // therefore only ever surface on calls that deliver no rows.
  const size_t take = std::min(out->capacity(), current_.size() - cursor_);
  for (size_t i = 0; i < take; ++i) out->AppendRowFrom(current_, cursor_ + i);
  cursor_ += take;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> PrefetchSource::Next() {
  while (row_pos_ >= row_batch_.size()) {
    if (row_eos_) return std::optional<storage::Tuple>();
    row_batch_.Reset(&child_->output_schema(), options_.batch_size);
    row_pos_ = 0;
    AQP_RETURN_IF_ERROR(NextColumnBatch(&row_batch_));
    if (row_batch_.empty()) row_eos_ = true;
  }
  return std::optional<storage::Tuple>(row_batch_.MaterializeRow(row_pos_++));
}

}  // namespace exec
}  // namespace aqp
