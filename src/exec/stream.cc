#include "exec/stream.h"

namespace aqp {
namespace exec {

Status PushSource::Push(storage::Tuple tuple) {
  if (finished_) {
    return Status::FailedPrecondition("Push after Finish on PushSource");
  }
  queue_.push_back(std::move(tuple));
  return Status::OK();
}

Status PushSource::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("PushSource already finished");
  }
  finished_ = true;
  return Status::OK();
}

Status PushSource::Open() {
  if (open_) return Status::FailedPrecondition("PushSource already open");
  open_ = true;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> PushSource::Next() {
  if (!open_) return Status::FailedPrecondition("PushSource not open");
  if (!queue_.empty()) {
    blocked_ = false;
    storage::Tuple t = std::move(queue_.front());
    queue_.pop_front();
    return std::optional<storage::Tuple>(std::move(t));
  }
  if (finished_) {
    blocked_ = false;
    return std::optional<storage::Tuple>();
  }
  // Queue empty but the stream is still live: report end-of-batch.
  // The caller distinguishes "blocked" from true end-of-stream via
  // blocked().
  blocked_ = true;
  return std::optional<storage::Tuple>();
}

Status PushSource::NextColumnBatch(storage::ColumnBatch* out) {
  if (!open_) return Status::FailedPrecondition("PushSource not open");
  out->Reset(&schema_);
  // Queued tuples decompose into the batch's columns here — the one
  // row→column boundary of the push path.
  while (!out->full() && !queue_.empty()) {
    out->AppendTupleRow(queue_.front());
    queue_.pop_front();
  }
  // Same contract as Next(): an empty result before Finish() means
  // "no tuple yet", flagged through blocked().
  blocked_ = out->empty() && !finished_;
  return Status::OK();
}

Status PushSource::NextBatch(storage::TupleBatch* out) {
  if (!open_) return Status::FailedPrecondition("PushSource not open");
  out->Reset(&schema_);
  while (!out->full() && !queue_.empty()) {
    out->Append(std::move(queue_.front()));
    queue_.pop_front();
  }
  blocked_ = out->empty() && !finished_;
  return Status::OK();
}

Status PushSource::Close() {
  if (!open_) return Status::FailedPrecondition("PushSource not open");
  open_ = false;
  return Status::OK();
}

Status GeneratorSource::Open() {
  if (open_) return Status::FailedPrecondition("GeneratorSource already open");
  open_ = true;
  done_ = false;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> GeneratorSource::Next() {
  if (!open_) return Status::FailedPrecondition("GeneratorSource not open");
  if (done_) return std::optional<storage::Tuple>();
  std::optional<storage::Tuple> t = generator_();
  if (!t.has_value()) done_ = true;
  return t;
}

Status GeneratorSource::NextColumnBatch(storage::ColumnBatch* out) {
  if (!open_) return Status::FailedPrecondition("GeneratorSource not open");
  out->Reset(&schema_);
  while (!out->full() && !done_) {
    std::optional<storage::Tuple> t = generator_();
    if (!t.has_value()) {
      done_ = true;
      break;
    }
    out->AppendTupleRow(*t);
  }
  return Status::OK();
}

Status GeneratorSource::NextBatch(storage::TupleBatch* out) {
  if (!open_) return Status::FailedPrecondition("GeneratorSource not open");
  out->Reset(&schema_);
  while (!out->full() && !done_) {
    std::optional<storage::Tuple> t = generator_();
    if (!t.has_value()) {
      done_ = true;
      break;
    }
    out->Append(std::move(*t));
  }
  return Status::OK();
}

Status GeneratorSource::Close() {
  if (!open_) return Status::FailedPrecondition("GeneratorSource not open");
  open_ = false;
  return Status::OK();
}

}  // namespace exec
}  // namespace aqp
