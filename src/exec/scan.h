#ifndef AQP_EXEC_SCAN_H_
#define AQP_EXEC_SCAN_H_

#include <memory>
#include <string>

#include "exec/operator.h"
#include "storage/relation.h"

namespace aqp {
namespace exec {

/// \brief Sequential scan over a materialized relation.
///
/// Non-owning: the relation must outlive the scan. Scans are always
/// quiescent (they hold no cross-call per-tuple state).
///
/// NextColumnBatch is native: cells are written straight into the
/// batch's column vectors/string arena, so no Tuple copy (one
/// `vector<Value>` plus one heap string per row on this schema) ever
/// happens on the scan→join hot path.
class RelationScan : public Operator {
 public:
  /// Scans `relation` front to back.
  explicit RelationScan(const storage::Relation* relation)
      : relation_(relation) {}

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status NextBatch(storage::TupleBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override {
    return relation_->schema();
  }
  std::string name() const override { return "RelationScan"; }

  /// Tuples produced so far.
  size_t position() const { return position_; }

 private:
  const storage::Relation* relation_;
  size_t position_ = 0;
  bool open_ = false;
};

/// \brief Owning scan over a tuple vector with an explicit schema.
///
/// Used when the producer does not want to keep a Relation alive
/// (generator output handed straight to a join input).
class VectorScan : public Operator {
 public:
  VectorScan(storage::Schema schema, std::vector<storage::Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status NextBatch(storage::TupleBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "VectorScan"; }

 private:
  storage::Schema schema_;
  std::vector<storage::Tuple> tuples_;
  size_t position_ = 0;
  bool open_ = false;
};

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_SCAN_H_
