#include "exec/csv_io.h"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/macros.h"

namespace aqp {
namespace exec {

CsvSource::CsvSource(storage::Schema schema, std::string csv_text,
                     CsvSourceOptions options)
    : schema_(std::move(schema)),
      text_(std::move(csv_text)),
      options_(options) {}

Result<CsvSource> CsvSource::FromFile(storage::Schema schema,
                                      const std::string& path,
                                      CsvSourceOptions options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return CsvSource(std::move(schema), std::move(buffer).str(), options);
}

Status CsvSource::ScanField(std::string_view* field, bool* end_of_record) {
  *end_of_record = false;
  if (pos_ < text_.size() && text_[pos_] == '"') {
    // Quoted field: unescape doubled quotes into the scratch buffer.
    scratch_.clear();
    ++pos_;
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("line " + std::to_string(line_) +
                                       ": unterminated quoted field");
      }
      const char c = text_[pos_];
      if (c == '"') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
          scratch_.push_back('"');
          pos_ += 2;
          continue;
        }
        ++pos_;  // closing quote
        break;
      }
      // Embedded newlines are field content, but still advance the
      // physical line counter so later diagnostics point at the right
      // line.
      if (c == '\n') ++line_;
      scratch_.push_back(c);
      ++pos_;
    }
    *field = scratch_;
  } else {
    // Unquoted field: a view straight into the text. Only CRLF or LF
    // terminate the record; a bare \r is field content.
    const size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == '\n') break;
      if (c == '\r' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        break;
      }
      ++pos_;
    }
    *field = std::string_view(text_.data() + begin, pos_ - begin);
  }
  // Field terminator.
  if (pos_ >= text_.size()) {
    *end_of_record = true;
    return Status::OK();
  }
  const char c = text_[pos_];
  if (c == ',') {
    ++pos_;
    return Status::OK();
  }
  if (c == '\n') {
    ++pos_;
    ++line_;
    *end_of_record = true;
    return Status::OK();
  }
  if (c == '\r' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
    pos_ += 2;
    ++line_;
    *end_of_record = true;
    return Status::OK();
  }
  return Status::InvalidArgument("line " + std::to_string(line_) +
                                 ": unexpected character after quoted field");
}

bool CsvSource::SkipBlankLines() {
  // ParseCsv's dialect (which ReadRelationCsv inherits) skips blank
  // lines anywhere in the input; match it so feeds load identically
  // through both readers.
  while (pos_ < text_.size()) {
    if (text_[pos_] == '\n') {
      ++pos_;
      ++line_;
    } else if (text_[pos_] == '\r' && pos_ + 1 < text_.size() &&
               text_[pos_ + 1] == '\n') {
      pos_ += 2;
      ++line_;
    } else {
      break;
    }
  }
  return pos_ < text_.size();
}

Status CsvSource::ScanRecordInto(storage::ColumnBatch* out) {
  const size_t record_line = line_;
  bool end_of_record = false;
  for (size_t col = 0; col < schema_.num_fields(); ++col) {
    if (end_of_record) {
      return Status::InvalidArgument(
          "line " + std::to_string(record_line) + " has " +
          std::to_string(col) + " cells, expected " +
          std::to_string(schema_.num_fields()));
    }
    std::string_view field;
    AQP_RETURN_IF_ERROR(ScanField(&field, &end_of_record));
    const storage::Field& spec = schema_.field(col);
    if (field.empty() && spec.type != storage::ValueType::kString) {
      out->AppendNull(col);
      continue;
    }
    switch (spec.type) {
      case storage::ValueType::kInt64: {
        int64_t v = 0;
        const auto result =
            std::from_chars(field.data(), field.data() + field.size(), v);
        if (result.ec != std::errc() ||
            result.ptr != field.data() + field.size()) {
          return Status::InvalidArgument(
              "line " + std::to_string(record_line) + ", column '" +
              spec.name + "': not an integer: '" + std::string(field) + "'");
        }
        out->AppendInt64(col, v);
        break;
      }
      case storage::ValueType::kDouble: {
        // strtod needs NUL termination; the reused cell scratch keeps
        // this allocation-free in steady state.
        cell_scratch_.assign(field);
        char* end = nullptr;
        const double v = std::strtod(cell_scratch_.c_str(), &end);
        if (end == cell_scratch_.c_str() || *end != '\0') {
          return Status::InvalidArgument(
              "line " + std::to_string(record_line) + ", column '" +
              spec.name + "': not a number: '" + std::string(field) + "'");
        }
        out->AppendDouble(col, v);
        break;
      }
      default:
        out->AppendString(col, field);
        break;
    }
  }
  if (!end_of_record) {
    // More cells than the schema has columns.
    std::string_view extra;
    bool eor = false;
    size_t cells = schema_.num_fields();
    while (!eor) {
      AQP_RETURN_IF_ERROR(ScanField(&extra, &eor));
      ++cells;
    }
    return Status::InvalidArgument(
        "line " + std::to_string(record_line) + " has " +
        std::to_string(cells) + " cells, expected " +
        std::to_string(schema_.num_fields()));
  }
  out->CommitRow();
  return Status::OK();
}

Status CsvSource::SkipRecord() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '"') {
      // Quoted section: record terminators inside it are content.
      ++pos_;
      while (true) {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_) +
              ": unterminated quoted field (cannot resynchronize)");
        }
        const char q = text_[pos_];
        if (q == '"') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
            pos_ += 2;
            continue;
          }
          ++pos_;
          break;
        }
        if (q == '\n') ++line_;
        ++pos_;
      }
      continue;
    }
    if (c == '\n') {
      ++pos_;
      ++line_;
      return Status::OK();
    }
    if (c == '\r' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
      pos_ += 2;
      ++line_;
      return Status::OK();
    }
    ++pos_;
  }
  return Status::OK();  // EOF ends the record
}

Status CsvSource::ScanRecordQuarantining(storage::ColumnBatch* out,
                                         bool* committed) {
  const size_t record_pos = pos_;
  const size_t record_line = line_;
  Status parsed = ScanRecordInto(out);
  if (parsed.ok()) {
    *committed = true;
    return Status::OK();
  }
  *committed = false;
  if (options_.max_bad_rows == 0) return parsed;
  out->AbandonRow();
  // Resync from the record's start; only an unterminated quote defeats
  // this (the record boundary itself is lost), and stays a hard error.
  pos_ = record_pos;
  line_ = record_line;
  AQP_RETURN_IF_ERROR(SkipRecord());
  if (quarantine_.size() >= options_.max_bad_rows) {
    return Status::ResourceExhausted(
        "quarantine cap of " + std::to_string(options_.max_bad_rows) +
        " bad row(s) exceeded; next bad record: " + parsed.message());
  }
  quarantine_.push_back(QuarantinedRow{record_line, parsed.message()});
  return Status::OK();
}

Status CsvSource::Open() {
  if (open_) return Status::FailedPrecondition("CsvSource already open");
  AQP_FAILPOINT(fail::site::kCsvOpen);
  pos_ = 0;
  line_ = 1;
  quarantine_.clear();
  if (text_.empty()) {
    return Status::InvalidArgument("CSV input is empty (no header row)");
  }
  // Validate the header against the schema.
  bool end_of_record = false;
  for (size_t col = 0; col < schema_.num_fields(); ++col) {
    if (end_of_record) {
      return Status::InvalidArgument(
          "CSV header has " + std::to_string(col) +
          " columns but the schema expects " +
          std::to_string(schema_.num_fields()));
    }
    std::string_view field;
    AQP_RETURN_IF_ERROR(ScanField(&field, &end_of_record));
    if (field != schema_.field(col).name) {
      return Status::InvalidArgument(
          "CSV header column " + std::to_string(col) + " is '" +
          std::string(field) + "' but the schema expects '" +
          schema_.field(col).name + "'");
    }
  }
  if (!end_of_record) {
    return Status::InvalidArgument(
        "CSV header has more columns than the schema's " +
        std::to_string(schema_.num_fields()));
  }
  row_batch_.Reset(&schema_, 1);
  open_ = true;
  return Status::OK();
}

Result<std::optional<storage::Tuple>> CsvSource::Next() {
  if (!open_) return Status::FailedPrecondition("CsvSource not open");
  AQP_FAILPOINT(fail::site::kCsvRead);
  while (SkipBlankLines()) {
    row_batch_.Clear();
    bool committed = false;
    AQP_RETURN_IF_ERROR(ScanRecordQuarantining(&row_batch_, &committed));
    if (committed) {
      return std::optional<storage::Tuple>(row_batch_.MaterializeRow(0));
    }
  }
  return std::optional<storage::Tuple>();
}

Status CsvSource::NextColumnBatch(storage::ColumnBatch* out) {
  if (!open_) return Status::FailedPrecondition("CsvSource not open");
  AQP_FAILPOINT(fail::site::kCsvRead);
  out->Reset(&schema_);
  while (!out->full() && SkipBlankLines()) {
    bool committed = false;
    Status s = ScanRecordQuarantining(out, &committed);
    if (!s.ok()) {
      out->Clear();
      return s;
    }
  }
  return Status::OK();
}

Status CsvSource::Close() {
  if (!open_) return Status::FailedPrecondition("CsvSource not open");
  open_ = false;
  return Status::OK();
}

Result<size_t> WriteOperatorCsv(Operator* op, std::ostream* out,
                                const ExecOptions& options) {
  AQP_RETURN_IF_ERROR(op->Open());
  CsvWriter csv(out);
  const storage::Schema& schema = op->output_schema();
  std::vector<std::string> row;
  row.reserve(schema.num_fields());
  for (const storage::Field& f : schema.fields()) row.push_back(f.name);
  csv.WriteRow(row);

  size_t written = 0;
  storage::ColumnBatch batch(&schema, options.batch_size);
  row.assign(schema.num_fields(), std::string());
  while (true) {
    Status s = op->NextColumnBatch(&batch);
    if (!s.ok()) {
      (void)op->Close();
      return s;
    }
    if (batch.empty()) break;
    // Cells stream straight out of the columns; the reused field
    // buffers keep the steady state allocation-light and no row
    // payload ever exists.
    for (size_t r = 0; r < batch.size(); ++r) {
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        if (batch.IsNull(c, r)) {
          row[c].clear();
          continue;
        }
        switch (batch.column_type(c)) {
          case storage::ValueType::kInt64:
            row[c] = CsvWriter::Field(batch.Int64At(c, r));
            break;
          case storage::ValueType::kDouble:
            row[c] = CsvWriter::Field(batch.DoubleAt(c, r));
            break;
          default:
            row[c].assign(batch.StringAt(c, r));
            break;
        }
      }
      csv.WriteRow(row);
      ++written;
    }
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return written;
}

}  // namespace exec
}  // namespace aqp
