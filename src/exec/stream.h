#ifndef AQP_EXEC_STREAM_H_
#define AQP_EXEC_STREAM_H_

#include <deque>
#include <functional>
#include <string>

#include "exec/operator.h"

namespace aqp {
namespace exec {

/// \brief Push-style source for streaming scenarios.
///
/// A producer pushes tuples (and eventually Finish()); the consumer
/// pulls through the Operator interface. Next() on an open, non-
/// finished, empty source reports "no tuple yet" as an engaged status
/// via `blocked()` — in this single-threaded engine the caller
/// interleaves pushes and pulls, so Next() never spins.
class PushSource : public Operator {
 public:
  explicit PushSource(storage::Schema schema) : schema_(std::move(schema)) {}

  /// Enqueues one tuple. May be called before or after Open(), but not
  /// after Finish().
  Status Push(storage::Tuple tuple);

  /// Declares end-of-stream.
  Status Finish();

  /// True iff the last Next() found the queue empty before Finish().
  bool blocked() const { return blocked_; }

  /// Tuples currently queued.
  size_t queued() const { return queue_.size(); }

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status NextBatch(storage::TupleBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "PushSource"; }

 private:
  storage::Schema schema_;
  std::deque<storage::Tuple> queue_;
  bool open_ = false;
  bool finished_ = false;
  bool blocked_ = false;
};

/// \brief Source that draws tuples from a generator function.
///
/// The callback returns the next tuple or nullopt at end-of-stream;
/// useful for unbounded synthetic streams in tests and benches.
class GeneratorSource : public Operator {
 public:
  using Generator = std::function<std::optional<storage::Tuple>()>;

  GeneratorSource(storage::Schema schema, Generator generator)
      : schema_(std::move(schema)), generator_(std::move(generator)) {}

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status NextBatch(storage::TupleBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "GeneratorSource"; }

 private:
  storage::Schema schema_;
  Generator generator_;
  bool open_ = false;
  bool done_ = false;
};

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_STREAM_H_
