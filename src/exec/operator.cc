#include "exec/operator.h"

#include "common/macros.h"

namespace aqp {
namespace exec {

const char* SideName(Side side) {
  return side == Side::kLeft ? "left" : "right";
}

Result<storage::Relation> CollectAll(Operator* op) {
  AQP_RETURN_IF_ERROR(op->Open());
  storage::Relation out(op->output_schema());
  while (true) {
    auto next = op->Next();
    if (!next.ok()) {
      // Best-effort close; the original error wins.
      (void)op->Close();
      return next.status();
    }
    if (!next->has_value()) break;
    out.AppendUnchecked(std::move(**next));
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return out;
}

Result<size_t> CountAll(Operator* op) {
  AQP_RETURN_IF_ERROR(op->Open());
  size_t count = 0;
  while (true) {
    auto next = op->Next();
    if (!next.ok()) {
      (void)op->Close();
      return next.status();
    }
    if (!next->has_value()) break;
    ++count;
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return count;
}

}  // namespace exec
}  // namespace aqp
