#include "exec/operator.h"

#include "common/macros.h"

namespace aqp {
namespace exec {

const char* SideName(Side side) {
  return side == Side::kLeft ? "left" : "right";
}

Status Operator::NextColumnBatch(storage::ColumnBatch* out) {
  out->Reset(&output_schema());
  while (!out->full()) {
    auto next = Next();
    if (!next.ok()) {
      out->Clear();
      return next.status();
    }
    if (!next->has_value()) break;
    out->AppendTupleRow(**next);
  }
  return Status::OK();
}

Status Operator::NextBatch(storage::TupleBatch* out) {
  out->Reset(&output_schema());
  while (!out->full()) {
    auto next = Next();
    if (!next.ok()) {
      out->Clear();
      return next.status();
    }
    if (!next->has_value()) break;
    out->Append(std::move(**next));
  }
  return Status::OK();
}

Result<storage::Relation> CollectAll(Operator* op, const ExecOptions& options) {
  AQP_RETURN_IF_ERROR(op->Open());
  storage::Relation out(op->output_schema());
  storage::ColumnBatch batch(&op->output_schema(), options.batch_size);
  while (true) {
    Status s = op->NextColumnBatch(&batch);
    if (!s.ok()) {
      // Best-effort close; the original error wins.
      (void)op->Close();
      return s;
    }
    if (batch.empty()) break;
    out.AppendColumnBatchUnchecked(batch);
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return out;
}

Result<size_t> CountAll(Operator* op, const ExecOptions& options) {
  AQP_RETURN_IF_ERROR(op->Open());
  size_t count = 0;
  // Late-materializing operators count without ever constructing a row
  // (drive pattern and batch sizes identical to the NextColumnBatch
  // loop, so adaptation traces do not depend on which drain ran).
  if (auto* unmaterialized = dynamic_cast<UnmaterializedCounter*>(op)) {
    while (true) {
      auto produced = unmaterialized->AdvanceUnmaterialized(
          options.batch_size == 0 ? storage::ColumnBatch::kDefaultCapacity
                                  : options.batch_size);
      if (!produced.ok()) {
        (void)op->Close();
        return produced.status();
      }
      if (*produced == 0) break;
      count += *produced;
    }
    AQP_RETURN_IF_ERROR(op->Close());
    return count;
  }
  storage::ColumnBatch batch(&op->output_schema(), options.batch_size);
  while (true) {
    Status s = op->NextColumnBatch(&batch);
    if (!s.ok()) {
      (void)op->Close();
      return s;
    }
    if (batch.empty()) break;
    count += batch.size();
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return count;
}

}  // namespace exec
}  // namespace aqp
