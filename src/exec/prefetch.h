#ifndef AQP_EXEC_PREFETCH_H_
#define AQP_EXEC_PREFETCH_H_

#include <cstdint>
#include <deque>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "exec/operator.h"
#include "storage/column_batch.h"

namespace aqp {
namespace exec {

/// \brief Knobs of the prefetching source wrapper.
struct PrefetchOptions {
  /// Batches buffered ahead of the consumer. Depth 1 still overlaps one
  /// refill with downstream work; larger depths absorb bursty sources.
  size_t depth = 2;
  /// Rows pulled from the child per producer refill. Match the
  /// consumer's batch size to make every pop serve one full batch.
  size_t batch_size = storage::ColumnBatch::kDefaultCapacity;
};

/// \brief Observability counters of a PrefetchSource.
struct PrefetchStats {
  /// Producer refills completed (including the end-of-stream and any
  /// failed attempts).
  uint64_t refills = 0;
  /// Consumer pops that found a batch already buffered — the overlap
  /// win. pops == served_without_wait + consumer_waits.
  uint64_t served_without_wait = 0;
  /// Consumer pops that had to block on the producer.
  uint64_t consumer_waits = 0;
  /// Total time the consumer spent blocked on the producer.
  int64_t consumer_wait_ns = 0;
  /// Total time the producer spent inside child NextColumnBatch — the
  /// refill cost moved off the consumer's critical path.
  int64_t producer_refill_ns = 0;
};

/// \brief Source wrapper that overlaps child refills with downstream
/// work on a dedicated producer thread (the single-threaded engine's
/// counterpart of the parallel join's pipelined ingest).
///
/// The producer pulls ColumnBatches from the borrowed child into a
/// bounded queue (PrefetchOptions::depth); NextColumnBatch() pops them
/// in order, so the consumer observes exactly the row stream — order,
/// batch errors, end-of-stream position — that calling the child
/// directly would produce. Each consumer call serves rows from one
/// buffered batch (up to out->capacity() of them), which preserves the
/// Operator contract: a failed child refill delivered no rows, so the
/// error surfaces on a call that delivers none either.
///
/// Error handling is deliberately non-sticky: after surfacing a child
/// error the producer is parked and lazily restarted on the next call,
/// so upstream transient-retry loops (SourceRetryOptions re-issuing a
/// kUnavailable refill) work unchanged through the wrapper.
/// End-of-stream IS sticky. Close() stops and joins the producer, then
/// closes the child.
///
/// The producer evaluates the `ingest.prefetch` failpoint before every
/// child refill; an injected status surfaces to the consumer exactly
/// like a child error.
///
/// Lock hierarchy: `mu_` is a leaf — the producer and consumer never
/// hold it across a child call or any other lock.
class PrefetchSource : public Operator {
 public:
  /// `child` is borrowed and must outlive the wrapper.
  explicit PrefetchSource(Operator* child, PrefetchOptions options = {});
  ~PrefetchSource() override;

  PrefetchSource(const PrefetchSource&) = delete;
  PrefetchSource& operator=(const PrefetchSource&) = delete;

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "PrefetchSource"; }

  /// Snapshot of the counters, taken under the internal mutex (safe
  /// against a running producer).
  PrefetchStats stats() const AQP_EXCLUDES(mu_);

  /// Allocated footprint of the bounded chunk deque plus the
  /// consumer-side serving batches. Locks the internal mutex for the
  /// queue (safe against a running producer); call from the consumer
  /// thread, which owns the serving batches.
  uint64_t ApproximateMemoryUsage() AQP_EXCLUDES(mu_);

 private:
  /// One buffered producer result: a batch, or an error, or EOS (OK +
  /// empty batch). A terminal chunk (error or EOS) is always the last
  /// one its producer generation pushes.
  struct Chunk {
    storage::ColumnBatch batch;
    Status status = Status::OK();
  };

  /// Spawns a producer generation (joins the previous, exited one).
  void StartProducerLocked() AQP_REQUIRES(mu_);
  /// Signals stop, joins the producer, and clears the stop flag so the
  /// operator can be re-opened.
  void StopProducer() AQP_EXCLUDES(mu_);
  void ProducerLoop() AQP_EXCLUDES(mu_);
  /// Failpoint + one child refill, exceptions contained to a Status.
  Status ProduceOne(storage::ColumnBatch* batch);

  Operator* child_;
  PrefetchOptions options_;
  bool open_ = false;

  mutable sync::Mutex mu_{"prefetch.mu_"};
  sync::CondVar cv_ready_;  // consumer waits: queue non-empty
  sync::CondVar cv_space_;  // producer waits: queue below depth
  std::deque<Chunk> queue_ AQP_GUARDED_BY(mu_);
  bool producer_running_ AQP_GUARDED_BY(mu_) = false;
  bool stop_ AQP_GUARDED_BY(mu_) = false;
  /// Producer handle: touched only by the consumer thread (Open /
  /// Close / lazy restart), never by the producer itself.
  std::thread thread_;

  /// Consumer-side cursor into the batch currently being served.
  storage::ColumnBatch current_;
  size_t cursor_ = 0;
  bool eos_ = false;

  /// Row-protocol (Next) adapter state.
  storage::ColumnBatch row_batch_;
  size_t row_pos_ = 0;
  bool row_eos_ = false;

  PrefetchStats stats_ AQP_GUARDED_BY(mu_);
};

}  // namespace exec
}  // namespace aqp

#endif  // AQP_EXEC_PREFETCH_H_
