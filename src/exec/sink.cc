#include "exec/sink.h"

#include "common/macros.h"

namespace aqp {
namespace exec {

Result<size_t> Drain(Operator* op,
                     const std::function<bool(const storage::Tuple&)>& visitor,
                     const DrainOptions& options) {
  AQP_RETURN_IF_ERROR(op->Open());
  size_t delivered = 0;
  while (true) {
    auto next = op->Next();
    if (!next.ok()) {
      (void)op->Close();
      return next.status();
    }
    if (!next->has_value()) break;
    ++delivered;
    const bool keep_going = visitor(**next);
    if (!keep_going) break;
    if (options.limit != 0 && delivered >= options.limit) break;
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return delivered;
}

}  // namespace exec
}  // namespace aqp
