#include "exec/sink.h"

#include "common/macros.h"

namespace aqp {
namespace exec {

Result<size_t> Drain(Operator* op,
                     const std::function<bool(const storage::Tuple&)>& visitor,
                     const DrainOptions& options) {
  AQP_RETURN_IF_ERROR(op->Open());
  size_t delivered = 0;
  storage::ColumnBatch batch(&op->output_schema(),
                             options.batch_size == 0 ? 64
                                                     : options.batch_size);
  bool stop = false;
  while (!stop) {
    Status s = op->NextColumnBatch(&batch);
    if (!s.ok()) {
      (void)op->Close();
      return s;
    }
    if (batch.empty()) break;
    // The visitor consumes rows, so each delivered row materializes
    // here — the sink boundary — and nowhere earlier.
    for (size_t row = 0; row < batch.size(); ++row) {
      ++delivered;
      if (!visitor(batch.MaterializeRow(row))) {
        stop = true;
        break;
      }
      if (options.limit != 0 && delivered >= options.limit) {
        stop = true;
        break;
      }
    }
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return delivered;
}

}  // namespace exec
}  // namespace aqp
