#include "exec/sink.h"

#include "common/macros.h"

namespace aqp {
namespace exec {

Result<size_t> Drain(Operator* op,
                     const std::function<bool(const storage::Tuple&)>& visitor,
                     const DrainOptions& options) {
  AQP_RETURN_IF_ERROR(op->Open());
  size_t delivered = 0;
  storage::TupleBatch batch(&op->output_schema(),
                            options.batch_size == 0 ? 64 : options.batch_size);
  bool stop = false;
  while (!stop) {
    Status s = op->NextBatch(&batch);
    if (!s.ok()) {
      (void)op->Close();
      return s;
    }
    if (batch.empty()) break;
    for (const storage::Tuple& tuple : batch) {
      ++delivered;
      if (!visitor(tuple)) {
        stop = true;
        break;
      }
      if (options.limit != 0 && delivered >= options.limit) {
        stop = true;
        break;
      }
    }
  }
  AQP_RETURN_IF_ERROR(op->Close());
  return delivered;
}

}  // namespace exec
}  // namespace aqp
