#ifndef AQP_METRICS_GAIN_COST_H_
#define AQP_METRICS_GAIN_COST_H_

#include <string>

namespace aqp {
namespace metrics {

/// \brief The paper's relative gain/cost metrics (§4.3).
///
/// Baselines: `r`/`c` are the result size and cost of the all-exact
/// run (best cost, least complete) and `R`/`C` those of the
/// all-approximate run (worst cost, most complete); `r_abs`/`c_abs`
/// belong to the evaluated (hybrid) run.
struct GainCost {
  double r = 0.0;
  double R = 0.0;
  double r_abs = 0.0;
  double c = 0.0;
  double C = 0.0;
  double c_abs = 0.0;

  /// g_rel = (r_abs - r) / (R - r): the fraction of the completeness
  /// gap recovered. When the gap is empty (R == r) there is nothing to
  /// recover and the gain is defined as 1.
  double RelativeGain() const;

  /// c_rel = c_abs / (C - c) — the paper's formula, which normalizes
  /// the *absolute* hybrid cost by the cost gap.
  double RelativeCost() const;

  /// (c_abs - c) / (C - c): the gap-normalized variant (0 = as cheap
  /// as all-exact, 1 = as expensive as all-approximate); reported
  /// alongside for interpretability (see DESIGN.md).
  double RelativeCostGap() const;

  /// e = g_rel / c_rel, the efficiency index under each column of
  /// Fig. 6.
  double Efficiency() const;

  /// One-line summary for logs.
  std::string ToString() const;
};

}  // namespace metrics
}  // namespace aqp

#endif  // AQP_METRICS_GAIN_COST_H_
