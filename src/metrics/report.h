#ifndef AQP_METRICS_REPORT_H_
#define AQP_METRICS_REPORT_H_

#include <ostream>
#include <vector>

#include "metrics/experiment.h"

namespace aqp {
namespace metrics {

/// \brief Renderers reproducing the paper's result figures as text
/// tables (one function per figure), plus CSV twins for downstream
/// plotting.
/// @{

/// Fig. 6: g_rel, c_rel and efficiency e per test case.
void PrintFig6GainCost(const std::vector<ExperimentResult>& results,
                       std::ostream& os);

/// Fig. 7: share of steps per state (EE/AE/EA/AA) and transition
/// counts per test case.
void PrintFig7TimeBreakdown(const std::vector<ExperimentResult>& results,
                            std::ostream& os);

/// Fig. 8: weighted execution-cost breakdown per state plus transition
/// cost, per test case.
void PrintFig8CostBreakdown(const std::vector<ExperimentResult>& results,
                            const adaptive::StateWeights& weights,
                            std::ostream& os);

/// CSV rows covering everything the three figures show (one row per
/// test case).
void WriteResultsCsv(const std::vector<ExperimentResult>& results,
                     std::ostream& os);
/// @}

}  // namespace metrics
}  // namespace aqp

#endif  // AQP_METRICS_REPORT_H_
