#include "metrics/experiment.h"

#include "common/macros.h"
#include "common/timer.h"
#include "exec/scan.h"

namespace aqp {
namespace metrics {

adaptive::AdaptiveJoinOptions MakeJoinOptions(
    const datagen::TestCase& tc, const ExperimentOptions& options) {
  adaptive::AdaptiveJoinOptions jo;
  jo.join.spec.left_column = datagen::kAccidentsLocationColumn;
  jo.join.spec.right_column = datagen::kAtlasLocationColumn;
  jo.join.spec.sim_threshold = options.sim_threshold;
  jo.join.spec.qgram.q = options.q;
  jo.join.left_size_hint = tc.child.size();
  jo.join.right_size_hint = tc.parent.size();
  jo.adaptive = options.adaptive;
  jo.adaptive.parent_side = exec::Side::kRight;
  jo.adaptive.parent_table_size = tc.parent.size();
  jo.weights = options.weights;
  jo.record_trace = options.record_trace;
  return jo;
}

Result<RunStats> RunPolicy(const datagen::TestCase& tc,
                           const ExperimentOptions& options,
                           adaptive::AdaptivePolicy policy,
                           adaptive::ProcessorState pinned_state,
                           adaptive::AdaptationTrace* trace_out) {
  exec::RelationScan child_scan(&tc.child);
  exec::RelationScan parent_scan(&tc.parent);
  adaptive::AdaptiveJoinOptions jo = MakeJoinOptions(tc, options);
  jo.adaptive.policy = policy;
  if (policy == adaptive::AdaptivePolicy::kPinned) {
    jo.adaptive.initial_state = pinned_state;
  }
  adaptive::AdaptiveJoin join(&child_scan, &parent_scan, jo);

  Timer timer;
  auto count = exec::CountAll(&join);
  if (!count.ok()) return count.status();
  const double wall = timer.ElapsedSeconds();

  std::string label = tc.options.Label();
  label += "/";
  label += (policy == adaptive::AdaptivePolicy::kAdaptive)
               ? "adaptive"
               : adaptive::ProcessorStateCode(pinned_state);
  RunStats stats = SummarizeRun(join, label, wall);
  if (trace_out != nullptr) *trace_out = join.trace();
  return stats;
}

Result<ExperimentResult> RunExperiment(const ExperimentOptions& options) {
  ExperimentResult result;
  result.testcase = options.testcase;
  result.label = options.testcase.Label();

  datagen::TestCase tc;
  AQP_ASSIGN_OR_RETURN(tc, datagen::GenerateTestCase(options.testcase));

  AQP_ASSIGN_OR_RETURN(
      result.all_exact,
      RunPolicy(tc, options, adaptive::AdaptivePolicy::kPinned,
                adaptive::ProcessorState::kLexRex, nullptr));
  AQP_ASSIGN_OR_RETURN(
      result.all_approx,
      RunPolicy(tc, options, adaptive::AdaptivePolicy::kPinned,
                adaptive::ProcessorState::kLapRap, nullptr));
  AQP_ASSIGN_OR_RETURN(
      result.adaptive,
      RunPolicy(tc, options, adaptive::AdaptivePolicy::kAdaptive,
                adaptive::ProcessorState::kLexRex, &result.trace));

  // §4.3: gains over the exact baseline, costs against the approximate
  // baseline, both from the same statistic (distinct matched children).
  result.weighted.r = static_cast<double>(
      result.all_exact.distinct_children_matched);
  result.weighted.R = static_cast<double>(
      result.all_approx.distinct_children_matched);
  result.weighted.r_abs = static_cast<double>(
      result.adaptive.distinct_children_matched);
  result.weighted.c = result.all_exact.WeightedCost(options.weights);
  result.weighted.C = result.all_approx.WeightedCost(options.weights);
  result.weighted.c_abs = result.adaptive.WeightedCost(options.weights);

  result.wall_clock = result.weighted;
  result.wall_clock.c = result.all_exact.wall_seconds;
  result.wall_clock.C = result.all_approx.wall_seconds;
  result.wall_clock.c_abs = result.adaptive.wall_seconds;

  const double children = static_cast<double>(tc.child.size());
  result.adaptive_completeness =
      static_cast<double>(result.adaptive.distinct_children_matched) /
      children;
  result.exact_completeness =
      static_cast<double>(result.all_exact.distinct_children_matched) /
      children;
  result.approx_completeness =
      static_cast<double>(result.all_approx.distinct_children_matched) /
      children;
  return result;
}

}  // namespace metrics
}  // namespace aqp
