#ifndef AQP_METRICS_EXPERIMENT_H_
#define AQP_METRICS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "adaptive/adaptive_join.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "metrics/gain_cost.h"
#include "metrics/run_stats.h"

namespace aqp {
namespace metrics {

/// \brief Parameters of one §4 experiment: a test case plus the join
/// and MAR configuration used on it.
struct ExperimentOptions {
  datagen::TestCaseOptions testcase;

  /// θ_sim (paper: 0.85 for all test cases).
  double sim_threshold = 0.85;
  /// q-gram width (paper: 3).
  int q = 3;

  /// MAR parameters; parent side/table size are filled in by the
  /// runner (child = left input = accidents, parent = right = atlas).
  adaptive::AdaptiveOptions adaptive;

  /// Weights pricing the step/transition counts (paper defaults).
  adaptive::StateWeights weights = adaptive::StateWeights::Paper();

  /// Also run the adaptive policy with trace recording (cheap).
  bool record_trace = true;
};

/// \brief Results of running one test case under the adaptive policy
/// and both pinned baselines.
struct ExperimentResult {
  std::string label;
  datagen::TestCaseOptions testcase;

  RunStats adaptive;
  RunStats all_exact;
  RunStats all_approx;

  /// Gain/cost with weighted step costs (the paper's accounting).
  GainCost weighted;
  /// Gain/cost with measured wall-clock seconds as the cost.
  GainCost wall_clock;

  /// Ground-truth completeness of each run: matched child rows over
  /// all child rows.
  double adaptive_completeness = 0.0;
  double exact_completeness = 0.0;
  double approx_completeness = 0.0;

  /// Adaptation timeline of the adaptive run.
  adaptive::AdaptationTrace trace;
};

/// \brief Runs one experiment: generates the test case, executes the
/// adaptive run and the two pinned baselines, and assembles the §4.3
/// metrics.
Result<ExperimentResult> RunExperiment(const ExperimentOptions& options);

/// \brief Runs a pre-generated test case under an explicit policy;
/// building block for RunExperiment and the parameter-tuning bench.
/// `pinned_state` is only used with AdaptivePolicy::kPinned.
Result<RunStats> RunPolicy(const datagen::TestCase& tc,
                           const ExperimentOptions& options,
                           adaptive::AdaptivePolicy policy,
                           adaptive::ProcessorState pinned_state,
                           adaptive::AdaptationTrace* trace_out);

/// \brief Builds the AdaptiveJoinOptions the runner uses for a test
/// case (child = left, parent = right), exposed so examples/benches
/// stay consistent with the harness.
adaptive::AdaptiveJoinOptions MakeJoinOptions(const datagen::TestCase& tc,
                                              const ExperimentOptions& options);

}  // namespace metrics
}  // namespace aqp

#endif  // AQP_METRICS_EXPERIMENT_H_
