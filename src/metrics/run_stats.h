#ifndef AQP_METRICS_RUN_STATS_H_
#define AQP_METRICS_RUN_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "adaptive/adaptive_join.h"
#include "adaptive/cost_model.h"
#include "adaptive/state.h"
#include "exec/parallel/parallel_join.h"
#include "join/probe.h"

namespace aqp {
namespace metrics {

/// \brief Everything measured about one join execution, sufficient to
/// regenerate the paper's Figs. 6–8 rows for that run.
struct RunStats {
  std::string label;

  /// Result shape.
  uint64_t result_pairs = 0;
  uint64_t distinct_children_matched = 0;
  uint64_t exact_pairs = 0;
  uint64_t approx_pairs = 0;

  /// Execution shape (Fig. 7 raw material).
  uint64_t total_steps = 0;
  std::array<uint64_t, adaptive::kNumProcessorStates> steps_per_state{};
  std::array<uint64_t, adaptive::kNumProcessorStates> transitions_into{};
  uint64_t total_transitions = 0;
  uint64_t catchup_tuples = 0;

  /// Measured time.
  double wall_seconds = 0.0;
  std::array<int64_t, adaptive::kNumProcessorStates> state_time_ns{};

  /// Approximate-probe work counters (Table 1 raw material).
  join::ApproxProbeStats probe;

  /// Rough memory of the join state (§2.3): end-of-run footprint and
  /// the high-water across the run. Single-threaded runs fill these
  /// from the core; parallel runs MUST use AddMemoryStats — the core
  /// accessor sees only one shard's slice, which is the old
  /// parallel-runs-report-no-memory bug.
  uint64_t memory_bytes = 0;
  uint64_t peak_memory_bytes = 0;

  /// Robustness counters (zero for clean runs): malformed CSV records
  /// skipped under quarantine, and transient source-refill retries the
  /// exchange absorbed. Non-zero values flag a result computed from an
  /// imperfect feed even when the run itself succeeded.
  uint64_t quarantined_rows = 0;
  uint64_t source_retries = 0;

  /// Pipelined-ingest overlap counters (all zero for serial-ingest
  /// runs): epochs whose routing was staged concurrently with the
  /// previous epoch's phases vs routed serially on the critical path;
  /// how long the coordinator stalled at the swap point waiting for
  /// staging to finish; and the routing time hidden behind phase
  /// execution vs spent on the critical path.
  uint64_t ingest_epochs_staged = 0;
  uint64_t ingest_epochs_serial = 0;
  int64_t ingest_stall_ns = 0;
  int64_t ingest_overlap_route_ns = 0;
  int64_t ingest_serial_route_ns = 0;

  /// Σ_i t_i·w_i + Σ_i tr_i·v_i under the given weights (§4.3 c_abs).
  double WeightedCost(const adaptive::StateWeights& weights) const;

  /// Fraction of steps spent in a state.
  double StepShare(adaptive::ProcessorState s) const;
};

/// Collects RunStats from a finished AdaptiveJoin (any policy).
RunStats SummarizeRun(const adaptive::AdaptiveJoin& join,
                      const std::string& label, double wall_seconds);

/// Folds a parallel join's pipelined-ingest counters into `stats`.
void AddIngestStats(const exec::parallel::IngestStats& ingest,
                    RunStats* stats);

/// Folds a parallel join's aggregated memory accounting (every shard's
/// committed tiers + exchange/staging/prefetch + coordinator state)
/// into `stats`. Call after the join finished; before this existed,
/// parallel runs reported memory_bytes == 0.
void AddMemoryStats(const exec::parallel::ParallelAdaptiveJoin& join,
                    RunStats* stats);

}  // namespace metrics
}  // namespace aqp

#endif  // AQP_METRICS_RUN_STATS_H_
