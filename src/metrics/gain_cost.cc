#include "metrics/gain_cost.h"

#include <sstream>

#include "common/string_util.h"

namespace aqp {
namespace metrics {

double GainCost::RelativeGain() const {
  const double gap = R - r;
  if (gap <= 0.0) return 1.0;
  return (r_abs - r) / gap;
}

double GainCost::RelativeCost() const {
  const double gap = C - c;
  if (gap <= 0.0) return c_abs > 0.0 ? 1.0 : 0.0;
  return c_abs / gap;
}

double GainCost::RelativeCostGap() const {
  const double gap = C - c;
  if (gap <= 0.0) return 0.0;
  return (c_abs - c) / gap;
}

double GainCost::Efficiency() const {
  const double c_rel = RelativeCost();
  if (c_rel == 0.0) return RelativeGain() > 0.0 ? 1e9 : 0.0;
  return RelativeGain() / c_rel;
}

std::string GainCost::ToString() const {
  std::ostringstream os;
  os << "gain=" << FormatDouble(RelativeGain(), 3)
     << " cost=" << FormatDouble(RelativeCost(), 3)
     << " e=" << FormatDouble(Efficiency(), 2) << " (r=" << r
     << ", r_abs=" << r_abs << ", R=" << R << "; c=" << c
     << ", c_abs=" << c_abs << ", C=" << C << ")";
  return os.str();
}

}  // namespace metrics
}  // namespace aqp
