#include "metrics/report.h"

#include "common/csv.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace aqp {
namespace metrics {

using adaptive::kAllProcessorStates;
using adaptive::ProcessorState;
using adaptive::StateIndex;

void PrintFig6GainCost(const std::vector<ExperimentResult>& results,
                       std::ostream& os) {
  os << "Fig. 6 — Gain and cost across all test cases\n";
  TablePrinter table({"test case", "g_rel", "c_rel", "e", "r (exact)",
                      "r_abs (adaptive)", "R (approx)", "completeness"});
  for (const ExperimentResult& res : results) {
    table.AddRow({res.label, FormatDouble(res.weighted.RelativeGain(), 3),
                  FormatDouble(res.weighted.RelativeCost(), 3),
                  FormatDouble(res.weighted.Efficiency(), 2),
                  std::to_string(static_cast<uint64_t>(res.weighted.r)),
                  std::to_string(static_cast<uint64_t>(res.weighted.r_abs)),
                  std::to_string(static_cast<uint64_t>(res.weighted.R)),
                  FormatDouble(res.adaptive_completeness, 3)});
  }
  table.Print(os);
}

void PrintFig7TimeBreakdown(const std::vector<ExperimentResult>& results,
                            std::ostream& os) {
  os << "Fig. 7 — Breakdown of relative execution times (steps per state)\n";
  TablePrinter table({"test case", "EE %", "AE %", "EA %", "AA %",
                      "transitions", "steps"});
  for (const ExperimentResult& res : results) {
    const RunStats& run = res.adaptive;
    table.AddRow(
        {res.label,
         FormatDouble(100.0 * run.StepShare(ProcessorState::kLexRex), 1),
         FormatDouble(100.0 * run.StepShare(ProcessorState::kLapRex), 1),
         FormatDouble(100.0 * run.StepShare(ProcessorState::kLexRap), 1),
         FormatDouble(100.0 * run.StepShare(ProcessorState::kLapRap), 1),
         std::to_string(run.total_transitions),
         std::to_string(run.total_steps)});
  }
  table.Print(os);
}

void PrintFig8CostBreakdown(const std::vector<ExperimentResult>& results,
                            const adaptive::StateWeights& weights,
                            std::ostream& os) {
  os << "Fig. 8 — Breakdown of relative execution costs (weighted, % of "
        "c_abs)\n";
  TablePrinter table({"test case", "EE %", "AE %", "EA %", "AA %",
                      "transition %", "c_abs"});
  for (const ExperimentResult& res : results) {
    const RunStats& run = res.adaptive;
    double state_cost[adaptive::kNumProcessorStates];
    double transition_cost = 0.0;
    double total = 0.0;
    for (ProcessorState s : kAllProcessorStates) {
      const size_t i = StateIndex(s);
      state_cost[i] =
          static_cast<double>(run.steps_per_state[i]) * weights.step[i];
      transition_cost +=
          static_cast<double>(run.transitions_into[i]) * weights.transition[i];
      total += state_cost[i];
    }
    total += transition_cost;
    auto share = [&](double cost) {
      return FormatDouble(total > 0.0 ? 100.0 * cost / total : 0.0, 1);
    };
    table.AddRow({res.label,
                  share(state_cost[StateIndex(ProcessorState::kLexRex)]),
                  share(state_cost[StateIndex(ProcessorState::kLapRex)]),
                  share(state_cost[StateIndex(ProcessorState::kLexRap)]),
                  share(state_cost[StateIndex(ProcessorState::kLapRap)]),
                  share(transition_cost), FormatDouble(total, 0)});
  }
  table.Print(os);
}

void WriteResultsCsv(const std::vector<ExperimentResult>& results,
                     std::ostream& os) {
  CsvWriter csv(&os);
  csv.WriteRow({"test_case", "g_rel", "c_rel", "c_rel_gap", "efficiency",
                "r_exact", "r_adaptive", "R_approx", "c_exact", "c_adaptive",
                "C_approx", "steps_EE", "steps_AE", "steps_EA", "steps_AA",
                "transitions", "catchup_tuples", "wall_exact_s",
                "wall_adaptive_s", "wall_approx_s", "completeness_exact",
                "completeness_adaptive", "completeness_approx"});
  for (const ExperimentResult& res : results) {
    const RunStats& run = res.adaptive;
    csv.WriteRow(
        {res.label, CsvWriter::Field(res.weighted.RelativeGain()),
         CsvWriter::Field(res.weighted.RelativeCost()),
         CsvWriter::Field(res.weighted.RelativeCostGap()),
         CsvWriter::Field(res.weighted.Efficiency()),
         CsvWriter::Field(res.weighted.r), CsvWriter::Field(res.weighted.r_abs),
         CsvWriter::Field(res.weighted.R), CsvWriter::Field(res.weighted.c),
         CsvWriter::Field(res.weighted.c_abs), CsvWriter::Field(res.weighted.C),
         CsvWriter::Field(run.steps_per_state[0]),
         CsvWriter::Field(run.steps_per_state[1]),
         CsvWriter::Field(run.steps_per_state[2]),
         CsvWriter::Field(run.steps_per_state[3]),
         CsvWriter::Field(run.total_transitions),
         CsvWriter::Field(run.catchup_tuples),
         CsvWriter::Field(res.all_exact.wall_seconds),
         CsvWriter::Field(res.adaptive.wall_seconds),
         CsvWriter::Field(res.all_approx.wall_seconds),
         CsvWriter::Field(res.exact_completeness),
         CsvWriter::Field(res.adaptive_completeness),
         CsvWriter::Field(res.approx_completeness)});
  }
}

}  // namespace metrics
}  // namespace aqp
