#include "metrics/run_stats.h"

#include <algorithm>

namespace aqp {
namespace metrics {

double RunStats::WeightedCost(const adaptive::StateWeights& weights) const {
  double cost = 0.0;
  for (size_t i = 0; i < adaptive::kNumProcessorStates; ++i) {
    cost += static_cast<double>(steps_per_state[i]) * weights.step[i];
    cost += static_cast<double>(transitions_into[i]) * weights.transition[i];
  }
  return cost;
}

double RunStats::StepShare(adaptive::ProcessorState s) const {
  if (total_steps == 0) return 0.0;
  return static_cast<double>(steps_per_state[adaptive::StateIndex(s)]) /
         static_cast<double>(total_steps);
}

RunStats SummarizeRun(const adaptive::AdaptiveJoin& join,
                      const std::string& label, double wall_seconds) {
  RunStats stats;
  stats.label = label;
  const join::HybridJoinCore& core = join.core();
  stats.result_pairs = core.pairs_emitted();
  const exec::Side child =
      exec::OtherSide(join.adaptive_options().adaptive.parent_side);
  stats.distinct_children_matched = core.distinct_matched(child);
  stats.exact_pairs = core.exact_pairs();
  stats.approx_pairs = core.approximate_pairs();

  const adaptive::CostAccountant& cost = join.cost();
  stats.total_steps = cost.total_steps();
  stats.total_transitions = cost.total_transitions();
  for (adaptive::ProcessorState s : adaptive::kAllProcessorStates) {
    stats.steps_per_state[adaptive::StateIndex(s)] = cost.steps(s);
    stats.transitions_into[adaptive::StateIndex(s)] = cost.transitions(s);
    stats.state_time_ns[adaptive::StateIndex(s)] = join.state_time_ns(s);
  }
  stats.catchup_tuples = core.catchup_tuples();
  stats.wall_seconds = wall_seconds;
  stats.probe = core.approx_probe_stats();
  stats.memory_bytes = core.ApproximateMemoryUsage();
  stats.peak_memory_bytes = stats.memory_bytes;
  return stats;
}

void AddIngestStats(const exec::parallel::IngestStats& ingest,
                    RunStats* stats) {
  stats->ingest_epochs_staged = ingest.epochs_staged;
  stats->ingest_epochs_serial = ingest.epochs_routed_serially;
  stats->ingest_stall_ns = ingest.stall_ns;
  stats->ingest_overlap_route_ns = ingest.overlap_route_ns;
  stats->ingest_serial_route_ns = ingest.serial_route_ns;
}

void AddMemoryStats(const exec::parallel::ParallelAdaptiveJoin& join,
                    RunStats* stats) {
  stats->memory_bytes = join.memory_bytes();
  stats->peak_memory_bytes =
      std::max(join.peak_memory_bytes(), join.memory_bytes());
}

}  // namespace metrics
}  // namespace aqp
