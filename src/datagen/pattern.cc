#include "datagen/pattern.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace aqp {
namespace datagen {

const char* PerturbationPatternName(PerturbationPattern pattern) {
  switch (pattern) {
    case PerturbationPattern::kUniform:
      return "uniform";
    case PerturbationPattern::kLowIntensityRegions:
      return "low_intensity";
    case PerturbationPattern::kFewHighIntensityRegions:
      return "few_high";
    case PerturbationPattern::kManyHighIntensityRegions:
      return "many_high";
  }
  return "?";
}

double PatternSpec::IntensityAt(size_t row) const {
  for (const Region& r : regions) {
    if (row >= r.begin && row < r.end) return r.intensity;
    if (row < r.begin) break;  // regions are sorted
  }
  return 0.0;
}

double PatternSpec::ExpectedOverallRate() const {
  if (table_size == 0) return 0.0;
  double mass = 0.0;
  for (const Region& r : regions) {
    mass += r.intensity * static_cast<double>(r.length());
  }
  return mass / static_cast<double>(table_size);
}

std::string PatternSpec::DensityStrip(size_t width) const {
  if (width == 0 || table_size == 0) return "";
  std::string strip(width, '.');
  for (size_t b = 0; b < width; ++b) {
    const size_t row = b * table_size / width;
    const double intensity = IntensityAt(row);
    if (intensity <= 0.0) {
      strip[b] = '.';
    } else if (intensity < 0.15) {
      strip[b] = ':';
    } else if (intensity < 0.4) {
      strip[b] = '+';
    } else {
      strip[b] = '#';
    }
  }
  return strip;
}

namespace {

/// Lays out `count` equal-length regions of total coverage `coverage`,
/// evenly spaced and centred within their slots.
std::vector<Region> EvenRegions(size_t table_size, size_t count,
                                double coverage, double intensity) {
  std::vector<Region> regions;
  if (table_size == 0 || count == 0) return regions;
  const size_t slot = table_size / count;
  size_t region_len = static_cast<size_t>(
      std::llround(coverage * static_cast<double>(table_size) /
                   static_cast<double>(count)));
  region_len = std::clamp<size_t>(region_len, 1, slot);
  for (size_t i = 0; i < count; ++i) {
    const size_t slot_begin = i * slot;
    const size_t offset = (slot - region_len) / 2;
    Region r;
    r.begin = slot_begin + offset;
    r.end = r.begin + region_len;
    r.intensity = intensity;
    regions.push_back(r);
  }
  return regions;
}

}  // namespace

Result<PatternSpec> MakePattern(PerturbationPattern pattern,
                                size_t table_size, double total_rate) {
  if (table_size == 0) {
    return Status::InvalidArgument("table_size must be positive");
  }
  if (total_rate < 0.0 || total_rate > 1.0) {
    return Status::InvalidArgument("total_rate must be in [0, 1]");
  }
  PatternSpec spec;
  spec.pattern = pattern;
  spec.table_size = table_size;
  switch (pattern) {
    case PerturbationPattern::kUniform:
      spec.regions = {Region{0, table_size, total_rate}};
      break;
    case PerturbationPattern::kLowIntensityRegions: {
      // Eight regions covering half the input => intensity 2x the rate.
      const double coverage = 0.5;
      spec.regions =
          EvenRegions(table_size, 8, coverage, total_rate / coverage);
      break;
    }
    case PerturbationPattern::kFewHighIntensityRegions: {
      // Three regions covering 15% => intensity ~6.7x the rate.
      const double coverage = 0.15;
      spec.regions =
          EvenRegions(table_size, 3, coverage, total_rate / coverage);
      break;
    }
    case PerturbationPattern::kManyHighIntensityRegions: {
      // Ten shorter regions, same 15% coverage and intensity as (c).
      const double coverage = 0.15;
      spec.regions =
          EvenRegions(table_size, 10, coverage, total_rate / coverage);
      break;
    }
  }
  // Intensities are probabilities; with very high rates the region
  // layouts above could exceed 1 — reject rather than silently clamp.
  for (const Region& r : spec.regions) {
    if (r.intensity > 1.0) {
      return Status::InvalidArgument(
          "total_rate too high for pattern '" +
          std::string(PerturbationPatternName(pattern)) +
          "': region intensity would exceed 1");
    }
  }
  return spec;
}

std::vector<size_t> SampleVariantPositions(const PatternSpec& spec,
                                           double total_rate, Rng* rng) {
  std::vector<size_t> positions;
  const size_t target = static_cast<size_t>(
      std::llround(total_rate * static_cast<double>(spec.table_size)));
  if (target == 0 || spec.regions.empty()) return positions;

  // Per-region quotas proportional to intensity * length, fixed up to
  // hit the target exactly.
  std::vector<size_t> quota(spec.regions.size(), 0);
  double mass = 0.0;
  for (const Region& r : spec.regions) {
    mass += r.intensity * static_cast<double>(r.length());
  }
  size_t assigned = 0;
  for (size_t i = 0; i < spec.regions.size(); ++i) {
    const Region& r = spec.regions[i];
    const double share =
        mass > 0.0 ? r.intensity * static_cast<double>(r.length()) / mass
                   : 0.0;
    quota[i] = std::min<size_t>(
        r.length(),
        static_cast<size_t>(std::floor(share * static_cast<double>(target))));
    assigned += quota[i];
  }
  // Distribute the remainder round-robin over regions with headroom.
  size_t i = 0;
  while (assigned < target) {
    bool any = false;
    for (i = 0; i < spec.regions.size() && assigned < target; ++i) {
      if (quota[i] < spec.regions[i].length()) {
        ++quota[i];
        ++assigned;
        any = true;
      }
    }
    if (!any) break;  // every region saturated
  }

  // Sample without replacement inside each region.
  for (size_t r = 0; r < spec.regions.size(); ++r) {
    const Region& region = spec.regions[r];
    if (quota[r] == region.length()) {
      for (size_t row = region.begin; row < region.end; ++row) {
        positions.push_back(row);
      }
      continue;
    }
    std::unordered_set<size_t> chosen;
    while (chosen.size() < quota[r]) {
      chosen.insert(region.begin + rng->Index(region.length()));
    }
    positions.insert(positions.end(), chosen.begin(), chosen.end());
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

}  // namespace datagen
}  // namespace aqp
