#ifndef AQP_DATAGEN_GENERATOR_H_
#define AQP_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/accidents.h"
#include "datagen/atlas.h"
#include "datagen/pattern.h"
#include "datagen/variant.h"
#include "storage/relation.h"

namespace aqp {
namespace datagen {

/// \brief One of the paper's eight test cases: a perturbation pattern
/// applied to the child only, or to both tables (§4.1).
struct TestCaseOptions {
  /// Fig. 5 pattern; applied identically to both tables when
  /// `perturb_parent` is set (the paper found mixing patterns adds no
  /// insight).
  PerturbationPattern pattern = PerturbationPattern::kUniform;
  /// Variants in both tables (true) or only in the child (false).
  bool perturb_parent = false;
  /// Overall variant proportion per perturbed input (paper: 10%).
  double variant_rate = 0.10;

  AtlasOptions atlas;
  AccidentsOptions accidents;
  VariantOptions variant;
  /// Master seed; atlas/accidents/perturbation seeds derive from it.
  uint64_t seed = 42;

  /// Short label like "uniform/child" or "few_high/both".
  std::string Label() const;
};

/// \brief A fully materialized test case with ground truth.
struct TestCase {
  TestCaseOptions options;
  /// The (possibly perturbed) parent table.
  storage::Relation parent;
  /// The (possibly perturbed) child table.
  storage::Relation child;

  /// Per child row: its true parent row.
  std::vector<size_t> child_true_parent;
  /// Per child row: whether its location string was perturbed.
  std::vector<uint8_t> child_is_variant;
  /// Per parent row: whether its location string was perturbed.
  std::vector<uint8_t> parent_is_variant;

  PatternSpec child_pattern;
  PatternSpec parent_pattern;

  /// Number of child rows whose pair survives exact matching: neither
  /// the child row nor its parent row is a variant.
  size_t CleanPairCount() const;
  /// Number of child rows that are variants.
  size_t ChildVariantCount() const;
  /// Number of parent rows that are variants.
  size_t ParentVariantCount() const;
};

/// \brief Materializes a test case: clean atlas + accidents, then
/// variant injection per the pattern, with collision guarantees (a
/// variant never equals any parent location, so exact matches on
/// variants are impossible by construction).
Result<TestCase> GenerateTestCase(const TestCaseOptions& options);

/// \brief The paper's eight test cases (§4.1): each Fig. 5 pattern ×
/// {child-only, both}, with shared sizes/seed taken from `base`.
std::vector<TestCaseOptions> PaperTestMatrix(const TestCaseOptions& base);

}  // namespace datagen
}  // namespace aqp

#endif  // AQP_DATAGEN_GENERATOR_H_
