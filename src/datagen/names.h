#ifndef AQP_DATAGEN_NAMES_H_
#define AQP_DATAGEN_NAMES_H_

#include <string>

#include "common/random.h"

namespace aqp {
namespace datagen {

/// \brief Generates Italian-style location strings shaped like the
/// paper's join attribute: "TAA BZ SANTA CRISTINA VALGARDENA"
/// (region code, province code, multi-word municipality name).
///
/// The generator is purely synthetic — a substitute for the real
/// 8082-municipality table the paper obtained from Markl et al.'s
/// generator (see DESIGN.md §3). Length statistics are controlled so
/// that one-character edits land just below θ_sim = 0.85 under q = 3
/// Jaccard, as in the paper's setup: `min_length` defaults to 36
/// characters, which guarantees J(s, edit1(s)) >= 0.85.
class LocationNameGenerator {
 public:
  explicit LocationNameGenerator(size_t min_length = 36)
      : min_length_(min_length) {}

  /// Produces one location string (not guaranteed unique; the atlas
  /// generator dedupes).
  std::string Generate(Rng* rng) const;

  size_t min_length() const { return min_length_; }

 private:
  /// A pronounceable municipality base name from Italianate syllables.
  std::string BaseName(Rng* rng) const;

  size_t min_length_;
};

}  // namespace datagen
}  // namespace aqp

#endif  // AQP_DATAGEN_NAMES_H_
