#ifndef AQP_DATAGEN_ACCIDENTS_H_
#define AQP_DATAGEN_ACCIDENTS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace aqp {
namespace datagen {

/// \brief Options for the synthetic accidents table (the child input).
struct AccidentsOptions {
  /// Number of accident records.
  size_t size = 10000;
  /// Seed for the deterministic generator.
  uint64_t seed = 7;
  /// Draw locations with a skewed (approximate Zipf) distribution
  /// instead of uniformly — city centres see more accidents.
  bool zipf_locations = false;
  /// Zipf exponent when zipf_locations is set.
  double zipf_exponent = 1.0;
};

/// Accidents schema: [accident_id:int64, location:string,
/// severity:int64, day:int64]. The join attribute is column 1.
inline constexpr size_t kAccidentsLocationColumn = 1;

/// \brief The accidents table plus its ground truth.
struct AccidentsData {
  storage::Relation table;
  /// Row index into the atlas of each accident's true location.
  std::vector<size_t> true_parent_row;
};

/// \brief Generates `options.size` accident rows referencing locations
/// of the (clean) atlas. Location strings are copied verbatim —
/// perturbation is applied later by the test-case generator.
Result<AccidentsData> GenerateAccidents(const storage::Relation& atlas,
                                        size_t atlas_location_column,
                                        const AccidentsOptions& options);

}  // namespace datagen
}  // namespace aqp

#endif  // AQP_DATAGEN_ACCIDENTS_H_
