#ifndef AQP_DATAGEN_SCALE_H_
#define AQP_DATAGEN_SCALE_H_

#include <cstdint>
#include <string>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace aqp {
namespace datagen {

/// \brief Options for the million-row streaming corpus.
struct ScaledCorpusOptions {
  /// Reference (parent / atlas-like) rows.
  size_t parent_rows = 0;
  /// Feed (child / accidents-like) rows.
  size_t child_rows = 0;
  /// Fraction of child rows carrying a one-character variant of their
  /// parent location (the rest reference it verbatim).
  double variant_rate = 0.10;
  uint64_t seed = 20090324;
  /// Minimum location length; long strings keep a single-character
  /// edit close to its parent under q-gram similarity.
  size_t min_name_length = 36;
  /// Every emitted variant keeps at least this padded-q=3 Jaccard
  /// similarity to its parent (the linkage threshold the paper's
  /// scenarios probe at). The generator scans substitution positions
  /// until one qualifies; rows where none does fall back to the
  /// verbatim parent string.
  double variant_min_similarity = 0.85;
};

/// \brief Deterministic constant-memory generator for million-row
/// linkage inputs.
///
/// GenerateTestCase materializes every canonical string into forbidden
/// sets (and re-checks each variant against them) — fine at paper
/// scale, prohibitive at 10^6 rows. This generator makes collisions
/// impossible *by construction* instead of by rejection:
///
///  - every parent location is upper-case (plus spaces) and ends in a
///    base-26 tag word unique to its row, so parent locations are
///    pairwise distinct;
///  - a child variant substitutes one character with a *lower-case*
///    letter, so no variant can equal any parent location (none
///    contains lower-case), exactly the invariant the forbidden-set
///    machinery enforces at small scale.
///
/// Every row is a pure function of (seed, row index) — nothing is
/// stored, any row can be generated in any order, and two passes over
/// the same corpus yield identical bytes. Variant substitutions are
/// placed so the child stays above variant_min_similarity (padded
/// q = 3 Jaccard) against its parent, so each child row matches
/// exactly its parent: variants approximately, the rest exactly.
class ScaledCorpus {
 public:
  explicit ScaledCorpus(const ScaledCorpusOptions& options);

  const ScaledCorpusOptions& options() const { return options_; }

  /// Parent schema: [location:string, municipality_id:int64]; the join
  /// attribute is column 0.
  const storage::Schema& parent_schema() const { return parent_schema_; }
  /// Child schema: [location:string, report_id:int64]; the join
  /// attribute is column 0.
  const storage::Schema& child_schema() const { return child_schema_; }

  /// Location string of parent `row` (row < parent_rows).
  std::string ParentLocation(size_t row) const;

  /// Parent row a child references (uniform, deterministic).
  size_t ChildParent(size_t row) const;

  /// Whether child `row` carries a variant location — derived from the
  /// emitted string, so it is truthful even for the rare rows whose
  /// variant draw fell back to the verbatim parent.
  bool ChildIsVariant(size_t row) const;

  /// Location string of child `row`: its parent's location, with one
  /// lower-case substitution chosen so the padded-q=3 Jaccard to the
  /// parent stays >= variant_min_similarity (verbatim parent when the
  /// row drew no variant, or no position qualifies).
  std::string ChildLocation(size_t row) const;

  /// Full rows (location + id) under the schemas above.
  storage::Tuple ParentTuple(size_t row) const;
  storage::Tuple ChildTuple(size_t row) const;

 private:
  /// Independent deterministic hash stream per (purpose, row).
  uint64_t RowHash(uint64_t stream, uint64_t row) const;

  ScaledCorpusOptions options_;
  storage::Schema parent_schema_;
  storage::Schema child_schema_;
};

}  // namespace datagen
}  // namespace aqp

#endif  // AQP_DATAGEN_SCALE_H_
