#include "datagen/names.h"

#include <array>

namespace aqp {
namespace datagen {

namespace {

constexpr std::array<const char*, 20> kRegionCodes = {
    "PIE", "VDA", "LOM", "TAA", "VEN", "FVG", "LIG", "EMR", "TOS", "UMB",
    "MAR", "LAZ", "ABR", "MOL", "CAM", "PUG", "BAS", "CAL", "SIC", "SAR"};

constexpr std::array<const char*, 24> kProvinceCodes = {
    "TO", "AO", "MI", "BZ", "VE", "TS", "GE", "BO", "FI", "PG", "AN", "RM",
    "AQ", "CB", "NA", "BA", "PZ", "CZ", "PA", "CA", "BG", "VR", "PD", "TN"};

constexpr std::array<const char*, 16> kPrefixes = {
    "SAN",    "SANTA", "SANTO", "MONTE", "CASTEL", "VILLA",
    "BORGO",  "ROCCA", "TORRE", "PIEVE", "CIVITA", "COLLE",
    "SERRA",  "CAMPO", "POGGIO", "RIVA"};

constexpr std::array<const char*, 18> kSuffixes = {
    "VALGARDENA", "TERME",      "MARITTIMA", "SCRIVIA",   "ADIGE",
    "SUPERIORE",  "INFERIORE",  "VECCHIO",   "NUOVO",     "DEL MONTE",
    "IN COLLE",   "SUL NAVIGLIO", "DI SOPRA", "DI SOTTO", "DEL FRIULI",
    "VESUVIANO",  "DEGLI ULIVI", "AL MARE"};

constexpr std::array<const char*, 28> kOnsets = {
    "B",  "C",  "D",  "F",  "G",  "L",  "M",  "N",  "P",  "R",
    "S",  "T",  "V",  "Z",  "BR", "CR", "DR", "FR", "GR", "PR",
    "TR", "VR", "GL", "PL", "SC", "SP", "ST", "GN"};

constexpr std::array<const char*, 10> kNuclei = {"A",  "E",  "I",  "O", "U",
                                                 "IA", "IE", "IO", "AU", "UO"};

constexpr std::array<const char*, 12> kCodas = {
    "", "", "", "", "N", "R", "L", "S", "NT", "ND", "RT", "SS"};

}  // namespace

std::string LocationNameGenerator::BaseName(Rng* rng) const {
  const size_t syllables = static_cast<size_t>(rng->Uniform(2, 4));
  std::string name;
  for (size_t i = 0; i < syllables; ++i) {
    name += kOnsets[rng->Index(kOnsets.size())];
    name += kNuclei[rng->Index(kNuclei.size())];
    if (i + 1 == syllables) {
      // Italian-style vocalic ending: drop the coda on the last
      // syllable most of the time.
      if (rng->Bernoulli(0.2)) name += kCodas[rng->Index(kCodas.size())];
    } else {
      name += kCodas[rng->Index(kCodas.size())];
    }
  }
  return name;
}

std::string LocationNameGenerator::Generate(Rng* rng) const {
  std::string out;
  out += kRegionCodes[rng->Index(kRegionCodes.size())];
  out += ' ';
  out += kProvinceCodes[rng->Index(kProvinceCodes.size())];
  out += ' ';
  if (rng->Bernoulli(0.55)) {
    out += kPrefixes[rng->Index(kPrefixes.size())];
    out += ' ';
  }
  out += BaseName(rng);
  // Extend with suffix words until the minimum length is met; one
  // extra suffix sometimes even when already long enough, for variety.
  while (out.size() < min_length_ || rng->Bernoulli(0.25)) {
    out += ' ';
    out += kSuffixes[rng->Index(kSuffixes.size())];
    if (out.size() >= min_length_ + 16) break;
  }
  return out;
}

}  // namespace datagen
}  // namespace aqp
