#include "datagen/scale.h"

#include <array>
#include <cassert>

#include "common/hash.h"
#include "storage/value.h"
#include "text/qgram.h"
#include "text/similarity.h"

namespace aqp {
namespace datagen {

namespace {

// Word pools for the synthetic Italian-style locations (upper-case
// only — the generator's non-collision argument depends on it; see the
// class comment).
constexpr std::array<const char*, 20> kRegions = {
    "PIE", "VDA", "LOM", "TAA", "VEN", "FVG", "LIG", "EMR", "TOS", "UMB",
    "MAR", "LAZ", "ABR", "MOL", "CAM", "PUG", "BAS", "CAL", "SIC", "SAR"};

constexpr std::array<const char*, 24> kProvinces = {
    "TO", "AO", "MI", "BZ", "VE", "TS", "GE", "BO", "FI", "PG", "AN", "RM",
    "AQ", "CB", "NA", "BA", "PZ", "CZ", "PA", "CA", "BG", "VR", "PD", "TN"};

constexpr std::array<const char*, 16> kPrefixes = {
    "SAN",   "SANTA", "SANTO", "MONTE",  "CASTEL", "VILLA",
    "BORGO", "ROCCA", "TORRE", "PIEVE",  "CIVITA", "COLLE",
    "SERRA", "CAMPO", "POGGIO", "RIVA"};

constexpr std::array<const char*, 16> kSuffixes = {
    "VALGARDENA", "TERME",     "MARITTIMA", "SCRIVIA",
    "ADIGE",      "SUPERIORE", "INFERIORE", "VECCHIO",
    "NUOVO",      "VESUVIANO", "LAGHETTO",  "COLLINA",
    "PIANURA",    "ULIVETO",   "CASTAGNO",  "GHIAIA"};

/// Base-26 tag word of a row index, fixed 7 letters (26^7 > 8·10^9
/// rows) — the constructive uniqueness device.
std::string RowTag(size_t row) {
  std::string tag(7, 'A');
  for (size_t i = 0; i < tag.size(); ++i) {
    tag[tag.size() - 1 - i] = static_cast<char>('A' + row % 26);
    row /= 26;
  }
  return tag;
}

}  // namespace

ScaledCorpus::ScaledCorpus(const ScaledCorpusOptions& options)
    : options_(options),
      parent_schema_(storage::Schema(
          {{"location", storage::ValueType::kString},
           {"municipality_id", storage::ValueType::kInt64}})),
      child_schema_(storage::Schema(
          {{"location", storage::ValueType::kString},
           {"report_id", storage::ValueType::kInt64}})) {}

uint64_t ScaledCorpus::RowHash(uint64_t stream, uint64_t row) const {
  return Mix64((options_.seed ^ (stream << 56)) +
               row * 0x9e3779b97f4a7c15ULL);
}

std::string ScaledCorpus::ParentLocation(size_t row) const {
  assert(row < options_.parent_rows);
  uint64_t h = RowHash(0, row);
  std::string out;
  out.reserve(options_.min_name_length + 24);
  out += kRegions[h % kRegions.size()];
  h >>= 8;
  out += ' ';
  out += kProvinces[h % kProvinces.size()];
  h >>= 8;
  out += ' ';
  out += kPrefixes[h % kPrefixes.size()];
  h >>= 8;
  out += ' ';
  out += RowTag(row);
  while (out.size() < options_.min_name_length) {
    out += ' ';
    out += kSuffixes[h % kSuffixes.size()];
    h = Mix64(h);
  }
  return out;
}

size_t ScaledCorpus::ChildParent(size_t row) const {
  assert(options_.parent_rows > 0);
  return static_cast<size_t>(RowHash(1, row) % options_.parent_rows);
}

bool ScaledCorpus::ChildIsVariant(size_t row) const {
  return ChildLocation(row) != ParentLocation(ChildParent(row));
}

std::string ScaledCorpus::ChildLocation(size_t row) const {
  const std::string parent = ParentLocation(ChildParent(row));
  // 53 uniform bits → double in [0, 1).
  const double u = static_cast<double>(RowHash(2, row) >> 11) *
                   (1.0 / 9007199254740992.0);
  if (u >= options_.variant_rate) return parent;
  const uint64_t h = RowHash(3, row);
  // A lower-case substitution always differs from the upper-case/space
  // original and can never reproduce any parent location. A
  // substitution's similarity cost depends on where it lands (grams it
  // destroys may be duplicated elsewhere in the string), so scan
  // positions from a row-specific start and keep the first variant
  // that stays linkable to its parent at the configured threshold.
  const text::QGramOptions q3;
  const text::GramSet parent_grams = text::GramSet::Of(parent, q3);
  const size_t start = static_cast<size_t>(h % parent.size());
  const char substitute = static_cast<char>('a' + (h >> 32) % 26);
  std::string variant = parent;
  for (size_t offset = 0; offset < parent.size(); ++offset) {
    const size_t pos = (start + offset) % parent.size();
    variant[pos] = substitute;
    const double sim = text::Jaccard(
        parent_grams, text::GramSet::Of(variant, q3));
    if (sim >= options_.variant_min_similarity) return variant;
    variant[pos] = parent[pos];
  }
  // No single substitution keeps this row linkable; emit it clean.
  return parent;
}

storage::Tuple ScaledCorpus::ParentTuple(size_t row) const {
  return storage::Tuple({storage::Value(ParentLocation(row)),
                         storage::Value(static_cast<int64_t>(row))});
}

storage::Tuple ScaledCorpus::ChildTuple(size_t row) const {
  return storage::Tuple({storage::Value(ChildLocation(row)),
                         storage::Value(static_cast<int64_t>(row))});
}

}  // namespace datagen
}  // namespace aqp
