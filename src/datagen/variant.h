#ifndef AQP_DATAGEN_VARIANT_H_
#define AQP_DATAGEN_VARIANT_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace aqp {
namespace datagen {

/// \brief Single-character edit operations.
enum class EditKind { kSubstitute, kDelete, kInsert, kTranspose };

/// \brief Options for variant creation.
///
/// The paper introduces "a small, one-character variation in the
/// string, e.g. TAA BZ SANTA CRISTINx VALGARDENA": a substitution. The
/// default matches that; the other edit kinds are available for
/// robustness experiments.
struct VariantOptions {
  std::vector<EditKind> kinds = {EditKind::kSubstitute};
  /// Replacement characters for substitutions/insertions. Lower-case
  /// by default, mirroring the paper's example (CRISTINx), which also
  /// guarantees the variant differs from the upper-case original.
  std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  /// Give up after this many attempts to avoid a forbidden collision.
  size_t max_attempts = 64;
};

/// Applies one random single-character edit; the result is guaranteed
/// to differ from `original` (edit distance exactly 1 for substitute/
/// delete/insert; transpose can be distance 2 under unit costs).
std::string MakeVariant(const std::string& original,
                        const VariantOptions& options, Rng* rng);

/// Like MakeVariant, but retries until the result is not contained in
/// `forbidden` (used to guarantee variants never collide with clean
/// reference values, which would silently re-enable exact matches).
Result<std::string> MakeNonCollidingVariant(
    const std::string& original,
    const std::unordered_set<std::string>& forbidden,
    const VariantOptions& options, Rng* rng);

}  // namespace datagen
}  // namespace aqp

#endif  // AQP_DATAGEN_VARIANT_H_
