#include "datagen/atlas.h"

#include <unordered_set>

#include "datagen/names.h"
#include "storage/schema.h"

namespace aqp {
namespace datagen {

Result<storage::Relation> GenerateAtlas(const AtlasOptions& options) {
  if (options.size == 0) {
    return Status::InvalidArgument("atlas size must be positive");
  }
  storage::Schema schema({{"location", storage::ValueType::kString},
                          {"municipality_id", storage::ValueType::kInt64},
                          {"lat", storage::ValueType::kDouble},
                          {"lon", storage::ValueType::kDouble}});
  storage::Relation atlas(schema);
  atlas.Reserve(options.size);

  Rng rng(options.seed);
  LocationNameGenerator names(options.min_name_length);
  std::unordered_set<std::string> seen;
  seen.reserve(options.size * 2);
  size_t failures = 0;
  while (atlas.size() < options.size) {
    std::string location = names.Generate(&rng);
    if (!seen.insert(location).second) {
      // Duplicate draw; the name space is much larger than any
      // realistic atlas, so long duplicate streaks indicate a
      // configuration problem.
      if (++failures > options.size * 10 + 1000) {
        return Status::ResourceExhausted(
            "atlas generator exhausted the name space; reduce size");
      }
      continue;
    }
    const auto id = static_cast<int64_t>(atlas.size());
    // Synthetic coordinates roughly within Italy's bounding box.
    const double lat = 36.0 + rng.NextDouble() * 11.0;
    const double lon = 6.6 + rng.NextDouble() * 12.0;
    atlas.AppendUnchecked(storage::Tuple(
        {storage::Value(std::move(location)), storage::Value(id),
         storage::Value(lat), storage::Value(lon)}));
  }
  return atlas;
}

}  // namespace datagen
}  // namespace aqp
