#include "datagen/variant.h"

#include <cassert>

namespace aqp {
namespace datagen {

namespace {

std::string ApplyEdit(const std::string& s, EditKind kind,
                      const std::string& alphabet, Rng* rng) {
  std::string out = s;
  switch (kind) {
    case EditKind::kSubstitute: {
      if (out.empty()) return ApplyEdit(s, EditKind::kInsert, alphabet, rng);
      size_t pos = rng->Index(out.size());
      // Never land on a space: keeping the word structure intact
      // mirrors the paper's example and keeps normalization no-ops.
      for (size_t tries = 0; out[pos] == ' ' && tries < 8; ++tries) {
        pos = rng->Index(out.size());
      }
      char replacement = alphabet[rng->Index(alphabet.size())];
      while (replacement == out[pos]) {
        replacement = alphabet[rng->Index(alphabet.size())];
      }
      out[pos] = replacement;
      return out;
    }
    case EditKind::kDelete: {
      if (out.size() <= 1) {
        return ApplyEdit(s, EditKind::kInsert, alphabet, rng);
      }
      size_t pos = rng->Index(out.size());
      for (size_t tries = 0; out[pos] == ' ' && tries < 8; ++tries) {
        pos = rng->Index(out.size());
      }
      out.erase(pos, 1);
      return out;
    }
    case EditKind::kInsert: {
      const size_t pos = rng->Index(out.size() + 1);
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                 alphabet[rng->Index(alphabet.size())]);
      return out;
    }
    case EditKind::kTranspose: {
      if (out.size() < 2) {
        return ApplyEdit(s, EditKind::kInsert, alphabet, rng);
      }
      for (size_t tries = 0; tries < 16; ++tries) {
        const size_t pos = rng->Index(out.size() - 1);
        if (out[pos] != out[pos + 1] && out[pos] != ' ' &&
            out[pos + 1] != ' ') {
          std::swap(out[pos], out[pos + 1]);
          return out;
        }
      }
      // Degenerate string (e.g. "AAAA"): fall back to substitution.
      return ApplyEdit(s, EditKind::kSubstitute, alphabet, rng);
    }
  }
  return out;
}

}  // namespace

std::string MakeVariant(const std::string& original,
                        const VariantOptions& options, Rng* rng) {
  assert(!options.kinds.empty());
  assert(!options.alphabet.empty());
  for (size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    const EditKind kind = options.kinds[rng->Index(options.kinds.size())];
    std::string out = ApplyEdit(original, kind, options.alphabet, rng);
    if (out != original) return out;
  }
  // Substitution with a lower-case alphabet cannot fail to differ; this
  // is unreachable for sane options, but return a safe fallback.
  return original + options.alphabet[0];
}

Result<std::string> MakeNonCollidingVariant(
    const std::string& original,
    const std::unordered_set<std::string>& forbidden,
    const VariantOptions& options, Rng* rng) {
  for (size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    std::string out = MakeVariant(original, options, rng);
    if (forbidden.count(out) == 0) return out;
  }
  return Status::Internal(
      "could not produce a non-colliding variant of '" + original +
      "' after " + std::to_string(options.max_attempts) + " attempts");
}

}  // namespace datagen
}  // namespace aqp
