#ifndef AQP_DATAGEN_ATLAS_H_
#define AQP_DATAGEN_ATLAS_H_

#include <cstdint>

#include "common/result.h"
#include "storage/relation.h"

namespace aqp {
namespace datagen {

/// \brief Options for the synthetic reference atlas (the parent table).
struct AtlasOptions {
  /// Number of municipalities; the paper's Italian atlas has 8082.
  size_t size = 8082;
  /// Seed for the deterministic generator.
  uint64_t seed = 42;
  /// Minimum location-string length (see LocationNameGenerator).
  size_t min_name_length = 36;
};

/// Atlas schema: [location:string, municipality_id:int64, lat:double,
/// lon:double]. The join attribute is column 0.
inline constexpr size_t kAtlasLocationColumn = 0;

/// \brief Generates the reference atlas: `size` rows with *unique*
/// location strings and synthetic map coordinates (the example
/// application overlays accidents onto these).
Result<storage::Relation> GenerateAtlas(const AtlasOptions& options);

}  // namespace datagen
}  // namespace aqp

#endif  // AQP_DATAGEN_ATLAS_H_
