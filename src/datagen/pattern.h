#ifndef AQP_DATAGEN_PATTERN_H_
#define AQP_DATAGEN_PATTERN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace aqp {
namespace datagen {

/// \brief The four perturbation patterns of Fig. 5.
enum class PerturbationPattern {
  /// (a) variants uniformly spread over the whole input.
  kUniform,
  /// (b) low-intensity perturbation regions interleaved with clean
  /// stretches.
  kLowIntensityRegions,
  /// (c) a small number of well-separated high-intensity regions.
  kFewHighIntensityRegions,
  /// (d) many short high-intensity regions.
  kManyHighIntensityRegions,
};

/// All four patterns, in Fig. 5 order.
inline constexpr PerturbationPattern kAllPatterns[] = {
    PerturbationPattern::kUniform,
    PerturbationPattern::kLowIntensityRegions,
    PerturbationPattern::kFewHighIntensityRegions,
    PerturbationPattern::kManyHighIntensityRegions,
};

/// Canonical name ("uniform", "low_intensity", "few_high", "many_high").
const char* PerturbationPatternName(PerturbationPattern pattern);

/// \brief One perturbation region: rows [begin, end) carry variants
/// with probability `intensity`.
struct Region {
  size_t begin = 0;
  size_t end = 0;
  double intensity = 0.0;

  size_t length() const { return end - begin; }
};

/// \brief A whole input's perturbation layout.
struct PatternSpec {
  PerturbationPattern pattern = PerturbationPattern::kUniform;
  size_t table_size = 0;
  /// Non-overlapping, sorted regions.
  std::vector<Region> regions;

  /// Variant probability at a given row (0 outside all regions).
  double IntensityAt(size_t row) const;

  /// Σ intensity·length / table_size — should equal the configured
  /// total rate.
  double ExpectedOverallRate() const;

  /// Renders a Fig. 5-style density strip ("....::::####....") with
  /// `width` buckets.
  std::string DensityStrip(size_t width = 64) const;
};

/// \brief Builds the region layout of a pattern.
///
/// Region counts and coverages follow the qualitative description of
/// §4.1: (a) one full-length region at the base rate; (b) eight
/// regions covering half the input at twice the base rate; (c) three
/// regions covering 15% at ~6.7× the base rate; (d) ten regions
/// covering the same 15% (shorter regions, same intensity). All
/// layouts keep the overall variant proportion at `total_rate`
/// (paper: 10%).
Result<PatternSpec> MakePattern(PerturbationPattern pattern,
                                size_t table_size, double total_rate);

/// \brief Draws the exact set of variant row positions for a pattern.
///
/// The paper fixes the proportion of variants, so sampling is
/// without-replacement per region with counts proportional to
/// intensity·length, totalling round(total_rate · table_size).
/// Positions are returned sorted.
std::vector<size_t> SampleVariantPositions(const PatternSpec& spec,
                                           double total_rate, Rng* rng);

}  // namespace datagen
}  // namespace aqp

#endif  // AQP_DATAGEN_PATTERN_H_
