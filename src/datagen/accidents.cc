#include "datagen/accidents.h"

#include <cmath>

#include "common/random.h"
#include "storage/schema.h"

namespace aqp {
namespace datagen {

Result<AccidentsData> GenerateAccidents(const storage::Relation& atlas,
                                        size_t atlas_location_column,
                                        const AccidentsOptions& options) {
  if (atlas.empty()) {
    return Status::InvalidArgument("atlas must not be empty");
  }
  if (options.size == 0) {
    return Status::InvalidArgument("accidents size must be positive");
  }
  storage::Schema schema({{"accident_id", storage::ValueType::kInt64},
                          {"location", storage::ValueType::kString},
                          {"severity", storage::ValueType::kInt64},
                          {"day", storage::ValueType::kInt64}});
  AccidentsData data;
  data.table = storage::Relation(schema);
  data.table.Reserve(options.size);
  data.true_parent_row.reserve(options.size);

  Rng rng(options.seed);

  // Optional skew: rank-based approximate Zipf via inverse-CDF over
  // precomputed cumulative weights.
  std::vector<double> cumulative;
  if (options.zipf_locations) {
    cumulative.resize(atlas.size());
    double total = 0.0;
    for (size_t r = 0; r < atlas.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1),
                              options.zipf_exponent);
      cumulative[r] = total;
    }
    for (double& c : cumulative) c /= total;
  }
  auto draw_parent = [&]() -> size_t {
    if (!options.zipf_locations) return rng.Index(atlas.size());
    const double u = rng.NextDouble();
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<size_t>(it - cumulative.begin());
  };

  for (size_t i = 0; i < options.size; ++i) {
    const size_t parent_row = draw_parent();
    data.true_parent_row.push_back(parent_row);
    const std::string& location =
        atlas.row(parent_row).at(atlas_location_column).AsString();
    data.table.AppendUnchecked(storage::Tuple(
        {storage::Value(static_cast<int64_t>(i)), storage::Value(location),
         storage::Value(rng.Uniform(1, 5)),
         storage::Value(rng.Uniform(19000, 20500))}));  // epoch days
  }
  return data;
}

}  // namespace datagen
}  // namespace aqp
