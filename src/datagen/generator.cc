#include "datagen/generator.h"

#include <unordered_set>

#include "common/macros.h"
#include "common/random.h"

namespace aqp {
namespace datagen {

std::string TestCaseOptions::Label() const {
  std::string label = PerturbationPatternName(pattern);
  label += perturb_parent ? "/both" : "/child";
  return label;
}

size_t TestCase::CleanPairCount() const {
  size_t clean = 0;
  for (size_t i = 0; i < child_true_parent.size(); ++i) {
    if (child_is_variant[i]) continue;
    if (parent_is_variant[child_true_parent[i]]) continue;
    ++clean;
  }
  return clean;
}

size_t TestCase::ChildVariantCount() const {
  size_t count = 0;
  for (uint8_t v : child_is_variant) count += v;
  return count;
}

size_t TestCase::ParentVariantCount() const {
  size_t count = 0;
  for (uint8_t v : parent_is_variant) count += v;
  return count;
}

Result<TestCase> GenerateTestCase(const TestCaseOptions& options) {
  TestCase tc;
  tc.options = options;

  // Derive independent deterministic sub-seeds from the master seed.
  Rng master(options.seed);
  AtlasOptions atlas_options = options.atlas;
  atlas_options.seed = master.engine()();
  AccidentsOptions accidents_options = options.accidents;
  accidents_options.seed = master.engine()();
  Rng parent_perturb_rng(master.engine()());
  Rng child_perturb_rng(master.engine()());

  // 1. Clean tables.
  AQP_ASSIGN_OR_RETURN(tc.parent, GenerateAtlas(atlas_options));
  AccidentsData accidents;
  AQP_ASSIGN_OR_RETURN(
      accidents,
      GenerateAccidents(tc.parent, kAtlasLocationColumn, accidents_options));
  tc.child = std::move(accidents.table);
  tc.child_true_parent = std::move(accidents.true_parent_row);
  tc.child_is_variant.assign(tc.child.size(), 0);
  tc.parent_is_variant.assign(tc.parent.size(), 0);

  // The canonical location set; no variant may ever equal a member,
  // otherwise exact matches would silently reappear.
  std::unordered_set<std::string> canonical;
  canonical.reserve(tc.parent.size() * 2);
  for (size_t r = 0; r < tc.parent.size(); ++r) {
    canonical.insert(tc.parent.row(r).at(kAtlasLocationColumn).AsString());
  }

  // 2. Perturb the parent (only for the "/both" cases).
  AQP_ASSIGN_OR_RETURN(
      tc.parent_pattern,
      MakePattern(options.pattern, tc.parent.size(),
                  options.perturb_parent ? options.variant_rate : 0.0));
  if (options.perturb_parent) {
    std::unordered_set<std::string> forbidden = canonical;
    const std::vector<size_t> rows = SampleVariantPositions(
        tc.parent_pattern, options.variant_rate, &parent_perturb_rng);
    for (size_t row : rows) {
      storage::Relation& parent = tc.parent;
      const std::string original =
          parent.row(row).at(kAtlasLocationColumn).AsString();
      std::string variant;
      AQP_ASSIGN_OR_RETURN(
          variant, MakeNonCollidingVariant(original, forbidden,
                                           options.variant, &parent_perturb_rng));
      forbidden.insert(variant);
      parent.mutable_row(row)->at(kAtlasLocationColumn) =
          storage::Value(std::move(variant));
      tc.parent_is_variant[row] = 1;
    }
  }

  // 3. Perturb the child. Forbidden set: every *final* parent string
  // (canonical or parent-variant), so a child variant can never match
  // any parent exactly.
  AQP_ASSIGN_OR_RETURN(tc.child_pattern,
                       MakePattern(options.pattern, tc.child.size(),
                                   options.variant_rate));
  {
    std::unordered_set<std::string> forbidden;
    forbidden.reserve(tc.parent.size() * 2);
    for (size_t r = 0; r < tc.parent.size(); ++r) {
      forbidden.insert(tc.parent.row(r).at(kAtlasLocationColumn).AsString());
    }
    const std::vector<size_t> rows = SampleVariantPositions(
        tc.child_pattern, options.variant_rate, &child_perturb_rng);
    for (size_t row : rows) {
      const std::string original =
          tc.child.row(row).at(kAccidentsLocationColumn).AsString();
      std::string variant;
      AQP_ASSIGN_OR_RETURN(
          variant, MakeNonCollidingVariant(original, forbidden,
                                           options.variant, &child_perturb_rng));
      tc.child.mutable_row(row)->at(kAccidentsLocationColumn) =
          storage::Value(std::move(variant));
      tc.child_is_variant[row] = 1;
    }
  }
  return tc;
}

std::vector<TestCaseOptions> PaperTestMatrix(const TestCaseOptions& base) {
  std::vector<TestCaseOptions> cases;
  for (PerturbationPattern pattern : kAllPatterns) {
    for (bool both : {false, true}) {
      TestCaseOptions options = base;
      options.pattern = pattern;
      options.perturb_parent = both;
      cases.push_back(options);
    }
  }
  return cases;
}

}  // namespace datagen
}  // namespace aqp
